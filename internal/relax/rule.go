// Package relax implements TriniT's query relaxation framework (§3).
//
// A relaxation rule replaces a set of triple patterns in a query with a set
// of new patterns and carries a weight w ∈ [0, 1] reflecting the semantic
// similarity of the two sides. Rules are applied by unification: rule
// variables bind to the query's slots (variables or constants), constants
// in the rule must match the query exactly. The package also provides the
// rewrite-space expander used by top-k processing and the rule miners that
// derive rules from the XKG itself, including the paper's weight formula
//
//	w(p1 → p2) = |args(p1) ∩ args(p2)| / |args(p2)|.
package relax

import (
	"fmt"
	"sort"
	"strings"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/text"
)

// Rule is a weighted relaxation rule: LHS patterns are replaced by RHS
// patterns. Variables (?x, ?y, ...) in the rule unify with the query's
// slots; variables appearing only in the RHS become fresh query variables.
type Rule struct {
	// ID is a stable identifier used in explanations and suggestions.
	ID string
	// LHS is the set of patterns to be replaced.
	LHS []query.Pattern
	// RHS is the replacement set.
	RHS []query.Pattern
	// Weight is the rule's semantic-similarity weight in [0, 1].
	Weight float64
	// Origin records where the rule came from: "manual", "mined",
	// "inversion", "composition", or an operator name.
	Origin string
}

// String renders the rule like the rows of Figure 4.
func (r *Rule) String() string {
	return fmt.Sprintf("%s => %s [w=%.2f, %s]", patternsString(r.LHS), patternsString(r.RHS), r.Weight, r.Origin)
}

func patternsString(ps []query.Pattern) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ; ")
}

// Validate checks the rule is well-formed: non-empty sides, a weight in
// [0, 1], and no constant-only degenerate LHS duplicates.
func (r *Rule) Validate() error {
	if len(r.LHS) == 0 || len(r.RHS) == 0 {
		return fmt.Errorf("rule %s: empty LHS or RHS", r.ID)
	}
	if r.Weight < 0 || r.Weight > 1 {
		return fmt.Errorf("rule %s: weight %v outside [0,1]", r.ID, r.Weight)
	}
	return nil
}

// subst maps rule-variable names to query slots.
type subst map[string]query.Slot

// unifySlot attempts to unify one rule slot with one query slot under s,
// returning the extended substitution or ok=false.
func unifySlot(rs, qs query.Slot, s subst) (subst, bool) {
	if rs.IsVar() {
		if bound, ok := s[rs.Var]; ok {
			if !slotEqual(bound, qs) {
				return nil, false
			}
			return s, true
		}
		ns := make(subst, len(s)+1)
		for k, v := range s {
			ns[k] = v
		}
		ns[rs.Var] = qs
		return ns, true
	}
	// Constant rule slot: the query slot must be an equal constant.
	if qs.IsVar() {
		return nil, false
	}
	if !termEqual(rs.Term, qs.Term) {
		return nil, false
	}
	return s, true
}

func slotEqual(a, b query.Slot) bool {
	if a.IsVar() != b.IsVar() {
		return false
	}
	if a.IsVar() {
		return a.Var == b.Var
	}
	return termEqual(a.Term, b.Term)
}

// termEqual compares terms; token phrases compare by normalised text so
// that 'won nobel for' in a rule matches 'won a Nobel for' in a query.
func termEqual(a, b rdf.Term) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == rdf.KindToken {
		return text.Normalize(a.Text) == text.Normalize(b.Text)
	}
	return a.Text == b.Text
}

// unifyPattern unifies a rule pattern with a query pattern.
func unifyPattern(rp, qp query.Pattern, s subst) (subst, bool) {
	s1, ok := unifySlot(rp.S, qp.S, s)
	if !ok {
		return nil, false
	}
	s2, ok := unifySlot(rp.P, qp.P, s1)
	if !ok {
		return nil, false
	}
	s3, ok := unifySlot(rp.O, qp.O, s2)
	if !ok {
		return nil, false
	}
	return s3, true
}

// Application is one way a rule matched a query: the substitution plus the
// matched query pattern indices, and the rewritten query.
type Application struct {
	Rule    *Rule
	Query   *query.Query
	Matched []int // indices into the original query's Patterns
}

// Apply returns every distinct single-step rewriting of q by r. A rewriting
// replaces an injectively matched set of query patterns (one per LHS
// pattern) with the instantiated RHS. Rewritings that would lose a
// projected variable are discarded.
func Apply(q *query.Query, r *Rule) []Application {
	var out []Application
	seen := make(map[string]bool)
	n := len(q.Patterns)
	if len(r.LHS) > n {
		return nil
	}
	used := make([]bool, n)
	match := make([]int, 0, len(r.LHS))

	var rec func(li int, s subst)
	rec = func(li int, s subst) {
		if li == len(r.LHS) {
			app := instantiate(q, r, match, s)
			if app == nil {
				return
			}
			key := canonicalKey(app.Query)
			if seen[key] || key == canonicalKey(q) {
				return
			}
			seen[key] = true
			out = append(out, *app)
			return
		}
		for qi := 0; qi < n; qi++ {
			if used[qi] {
				continue
			}
			s2, ok := unifyPattern(r.LHS[li], q.Patterns[qi], s)
			if !ok {
				continue
			}
			used[qi] = true
			match = append(match, qi)
			rec(li+1, s2)
			match = match[:len(match)-1]
			used[qi] = false
		}
	}
	rec(0, subst{})
	return out
}

// instantiate builds the rewritten query for one complete match. Returns
// nil when the rewrite is invalid (e.g. drops a projected variable).
func instantiate(q *query.Query, r *Rule, matched []int, s subst) *Application {
	isMatched := make(map[int]bool, len(matched))
	for _, i := range matched {
		isMatched[i] = true
	}
	taken := make(map[string]bool)
	for _, v := range q.Vars() {
		taken[v] = true
	}
	fresh := make(map[string]string)
	freshCounter := 0
	resolve := func(sl query.Slot) query.Slot {
		if !sl.IsVar() {
			return sl
		}
		if bound, ok := s[sl.Var]; ok {
			return bound
		}
		// RHS-only rule variable: allocate a fresh query variable,
		// stable within this application.
		if name, ok := fresh[sl.Var]; ok {
			return query.Variable(name)
		}
		var name string
		for {
			name = fmt.Sprintf("r%d", freshCounter)
			freshCounter++
			if !taken[name] {
				break
			}
		}
		taken[name] = true
		fresh[sl.Var] = name
		return query.Variable(name)
	}

	nq := &query.Query{
		Projection: append([]string(nil), q.Projection...),
		Filters:    append([]query.Filter(nil), q.Filters...),
		Limit:      q.Limit,
	}
	for i, p := range q.Patterns {
		if !isMatched[i] {
			nq.Patterns = append(nq.Patterns, p)
		}
	}
	for _, p := range r.RHS {
		nq.Patterns = append(nq.Patterns, query.Pattern{
			S: resolve(p.S), P: resolve(p.P), O: resolve(p.O),
		})
	}
	if err := nq.Validate(); err != nil {
		return nil
	}
	return &Application{Rule: r, Query: nq, Matched: matched2(matched)}
}

func matched2(m []int) []int {
	out := append([]int(nil), m...)
	sort.Ints(out)
	return out
}

// canonicalKey is an order-insensitive rendering of a query's patterns used
// to deduplicate rewrites.
func canonicalKey(q *query.Query) string {
	parts := make([]string, len(q.Patterns))
	for i, p := range q.Patterns {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " | ")
}
