package trinit

// Request-scoped query API contract: QueryContext with default options
// is byte-identical to Query, cancellation returns promptly with a
// partial result and ErrCanceled, per-query options never bleed between
// pooled executors, QueryStream delivers provisional → final → done in
// order, and explanations render lazily on demand. Run with -race.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	synthOnce    sync.Once
	synthEngine  *Engine
	synthQueries []EvalQuery
	synthErr     error
)

// syntheticWorkload builds the default synthetic engine and its full
// 70-query workload once per test binary.
func syntheticWorkload(t *testing.T) (*Engine, []EvalQuery) {
	t.Helper()
	synthOnce.Do(func() {
		synthEngine, synthQueries, synthErr = NewSyntheticEngine(DefaultSyntheticConfig(), 70)
	})
	if synthErr != nil {
		t.Fatal(synthErr)
	}
	return synthEngine, synthQueries
}

// renderResult serialises every exported field of a Result, so equal
// bytes mean equal answers, explanations, notices, suggestions, metrics
// and trace.
func renderResult(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestQueryContextDefaultByteIdenticalToQuery pins the compatibility
// contract on the full 70-query synthetic workload plus the demo
// queries: QueryContext with a background context and no options is the
// old Query, byte for byte.
func TestQueryContextDefaultByteIdenticalToQuery(t *testing.T) {
	e, queries := syntheticWorkload(t)
	texts := make([]string, 0, len(queries)+4)
	for _, q := range queries {
		texts = append(texts, q.Text)
	}
	check := func(t *testing.T, e *Engine, texts []string) {
		for _, text := range texts {
			// Warm the shared match-list cache first so both calls see
			// identical cache metrics (cold vs warm IndexScanned would
			// otherwise differ for reasons unrelated to the API).
			_, _ = e.Query(text)
			classic, err1 := e.Query(text)
			scoped, err2 := e.QueryContext(context.Background(), text)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: Query err=%v, QueryContext err=%v", text, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if a, b := renderResult(t, classic), renderResult(t, scoped); a != b {
				t.Fatalf("%s: results differ\n Query:        %s\n QueryContext: %s", text, a, b)
			}
		}
	}
	check(t, e, texts)

	demo := NewDemoEngine()
	var demoTexts []string
	for _, dq := range DemoQueries() {
		demoTexts = append(demoTexts, dq.Query)
	}
	demoTexts = append(demoTexts, "?x ?p ?y", "?x bornIn ?y . ?y locatedIn ?z")
	check(t, demo, demoTexts)
}

func TestQueryContextCanceledBeforeEvaluate(t *testing.T) {
	e := NewDemoEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.QueryContext(ctx, "AlbertEinstein hasAdvisor ?x")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want non-nil partial result", res)
	}
}

func TestQueryContextDeadlineExpiry(t *testing.T) {
	e, _ := syntheticWorkload(t)
	start := time.Now()
	res, err := e.QueryContext(context.Background(), "?x ?p ?y . ?y ?q ?z", WithTimeout(time.Nanosecond))
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("expired query took %v to return", d)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("want non-nil partial result on deadline expiry")
	}
}

// TestQueryContextCancelMidJoin cancels the request from inside the
// stream callback — after the processor has admitted its first answer —
// and asserts the join loop unwinds at its next cancellation check with
// the answers found so far. Exhaustive mode keeps the join running over
// the full match list (thousands of branches on the synthetic world),
// so the in-join cancellation check is guaranteed to be the one that
// observes the cancel.
func TestQueryContextCancelMidJoin(t *testing.T) {
	e, _ := syntheticWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	provisional := 0
	res, err := e.QueryStream(ctx, "?x ?p ?y", func(ev AnswerEvent) error {
		if ev.Type == EventProvisional {
			provisional++
			cancel()
		}
		return nil
	}, WithMode(ModeExhaustive))
	if provisional == 0 {
		t.Fatal("no provisional event before cancellation")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("want a partial result after mid-join cancellation")
	}
	canceledTraced := false
	for _, tr := range res.Trace {
		if tr.Status == "canceled" {
			canceledTraced = true
		}
	}
	if !canceledTraced {
		t.Fatalf("no trace entry with status canceled: %+v", res.Trace)
	}
}

// TestConcurrentPerQueryKDoesNotBleed is the pooled-executor regression
// test: per-query WithK values must never leak into other borrowers of
// the same executor pool (the old Executor.SetK mutated shared state).
func TestConcurrentPerQueryKDoesNotBleed(t *testing.T) {
	e := NewDemoEngine()
	baseline, err := e.Query("?x ?p ?y")
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Answers) < 5 {
		t.Fatalf("demo ?x ?p ?y returned %d answers, need >= 5", len(baseline.Answers))
	}
	defaultN := len(baseline.Answers)

	var wg sync.WaitGroup
	errs := make(chan error, 96)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				var want int
				var res *Result
				var err error
				switch g % 3 {
				case 0:
					want = 1
					res, err = e.QueryContext(context.Background(), "?x ?p ?y", WithK(1))
				case 1:
					want = 5
					res, err = e.QueryContext(context.Background(), "?x ?p ?y", WithK(5))
				default:
					want = defaultN
					res, err = e.Query("?x ?p ?y")
				}
				if err != nil {
					errs <- err
					continue
				}
				if len(res.Answers) != want {
					errs <- fmt.Errorf("goroutine %d: got %d answers, want %d", g, len(res.Answers), want)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestQueryStreamEventOrdering(t *testing.T) {
	e := NewDemoEngine()
	const text = "AlbertEinstein hasAdvisor ?x"
	// Warm the cache so the streamed and batch runs below see the same
	// cache metrics.
	if _, err := e.Query(text); err != nil {
		t.Fatal(err)
	}
	var events []AnswerEvent
	res, err := e.QueryStream(context.Background(), text, func(ev AnswerEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if last := events[len(events)-1]; last.Type != EventDone {
		t.Fatalf("last event = %v, want done", last.Type)
	}
	provisional, finals := 0, 0
	phase := EventProvisional
	for _, ev := range events {
		if ev.Type < phase {
			t.Fatalf("event %v after phase %v: ordering violated", ev.Type, phase)
		}
		phase = ev.Type
		switch ev.Type {
		case EventProvisional:
			provisional++
			if ev.Answer == nil {
				t.Fatal("provisional event without answer")
			}
		case EventAnswer:
			finals++
			if ev.Rank != finals {
				t.Fatalf("final answer rank = %d, want %d", ev.Rank, finals)
			}
		case EventDone:
			if ev.Metrics == nil {
				t.Fatal("done event without metrics")
			}
			if ev.Partial {
				t.Fatal("done event marked partial on a completed query")
			}
		}
	}
	if provisional == 0 {
		t.Fatal("no provisional events")
	}
	if finals != len(res.Answers) {
		t.Fatalf("%d final events, result has %d answers", finals, len(res.Answers))
	}

	// The streamed final answers equal the batch result.
	batch, err := e.QueryContext(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderResult(t, res), renderResult(t, batch); a != b {
		t.Fatalf("streamed result differs from batch result\n stream: %s\n batch:  %s", a, b)
	}
}

func TestQueryStreamCallbackErrorStopsQuery(t *testing.T) {
	e := NewDemoEngine()
	boom := errors.New("sink full")
	sawDone := false
	res, err := e.QueryStream(context.Background(), "?x ?p ?y", func(ev AnswerEvent) error {
		if ev.Type == EventDone {
			sawDone = true
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback error", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("callback failure must not masquerade as ErrCanceled")
	}
	if sawDone {
		t.Fatal("done event delivered after the callback failed")
	}
	if res == nil {
		t.Fatal("want the assembled result even when the callback fails")
	}
	if res.Partial {
		t.Fatal("callback failure must not mark the result partial")
	}
}

func TestWithoutExplanationsRendersLazily(t *testing.T) {
	e := NewDemoEngine()
	const text = "SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }"
	eager, err := e.QueryContext(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := e.QueryContext(context.Background(), text, WithoutExplanations())
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy.Answers) != len(eager.Answers) || len(lazy.Answers) == 0 {
		t.Fatalf("answer counts differ: %d vs %d", len(lazy.Answers), len(eager.Answers))
	}
	for i, a := range lazy.Answers {
		if a.Explanation.Text != "" {
			t.Fatalf("answer %d carries an eager explanation under WithoutExplanations", i)
		}
	}
	for i := range lazy.Answers {
		ex, err := lazy.Explain(i)
		if err != nil {
			t.Fatal(err)
		}
		want := eager.Answers[i].Explanation
		if ex.Text != want.Text {
			t.Fatalf("lazy explanation %d differs:\n lazy:  %q\n eager: %q", i, ex.Text, want.Text)
		}
		if lazy.Answers[i].Explanation.Text != want.Text {
			t.Fatalf("Explain(%d) did not memoise into the answer", i)
		}
	}
	if _, err := lazy.Explain(len(lazy.Answers)); err == nil {
		t.Fatal("Explain out of range succeeded")
	}
	if _, err := lazy.Explain(-1); err == nil {
		t.Fatal("Explain(-1) succeeded")
	}
}

func TestWithoutTraceSkipsTrace(t *testing.T) {
	e := NewDemoEngine()
	res, err := e.QueryContext(context.Background(), "AlbertEinstein hasAdvisor ?x", WithoutTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("trace collected under WithoutTrace: %d entries", len(res.Trace))
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
}

func TestWithModeExhaustiveMatchesIncremental(t *testing.T) {
	e := NewDemoEngine()
	for _, dq := range DemoQueries() {
		inc, err := e.QueryContext(context.Background(), dq.Query)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := e.QueryContext(context.Background(), dq.Query, WithMode(ModeExhaustive))
		if err != nil {
			t.Fatal(err)
		}
		if len(inc.Answers) != len(exh.Answers) {
			t.Fatalf("user %s: %d vs %d answers", dq.User, len(inc.Answers), len(exh.Answers))
		}
		for i := range inc.Answers {
			if inc.Answers[i].Score != exh.Answers[i].Score {
				t.Fatalf("user %s answer %d: score %v vs %v", dq.User, i, inc.Answers[i].Score, exh.Answers[i].Score)
			}
		}
		if exh.Metrics.RewritesSkipped != 0 {
			t.Fatalf("exhaustive mode skipped %d rewrites", exh.Metrics.RewritesSkipped)
		}
	}
}

func TestWithKRespectsQueryLimit(t *testing.T) {
	e := NewDemoEngine()
	res, err := e.QueryContext(context.Background(), "?x ?p ?y LIMIT 2", WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("LIMIT 2 with WithK(5) returned %d answers", len(res.Answers))
	}
}

func TestTypedSentinelErrors(t *testing.T) {
	e := New(nil)
	if _, err := e.Query("?x bornIn Ulm"); !errors.Is(err, ErrNotFrozen) {
		t.Fatalf("Query before Freeze: err = %v, want ErrNotFrozen", err)
	}
	if _, _, err := e.Ask("Who advised Einstein?"); !errors.Is(err, ErrNotFrozen) {
		t.Fatalf("Ask before Freeze: err = %v, want ErrNotFrozen", err)
	}
	if _, err := e.MineRules(DefaultMiningConfig()); !errors.Is(err, ErrNotFrozen) {
		t.Fatalf("MineRules before Freeze: err = %v, want ErrNotFrozen", err)
	}
	e.Freeze()
	if err := e.AddKGFact("A", "p", "B"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddKGFact after Freeze: err = %v, want ErrFrozen", err)
	}
	if err := e.AddKGLiteral("A", "p", "b"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddKGLiteral after Freeze: err = %v, want ErrFrozen", err)
	}
	if err := e.AddTokenTriple("a", "r", "b", 0.5, "", ""); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddTokenTriple after Freeze: err = %v, want ErrFrozen", err)
	}
	if _, err := e.ExtendFromDocuments(nil); !errors.Is(err, ErrFrozen) {
		t.Fatalf("ExtendFromDocuments after Freeze: err = %v, want ErrFrozen", err)
	}
	if _, err := e.Query("not a 'query"); !errors.Is(err, ErrParse) {
		t.Fatalf("malformed query: err = %v, want ErrParse", err)
	} else if !strings.Contains(err.Error(), "parse error") {
		t.Fatalf("parse error lost its detail: %v", err)
	}
	demo := NewDemoEngine()
	if _, _, err := demo.Ask("gibberish beyond templates"); !errors.Is(err, ErrParse) {
		t.Fatalf("untranslatable question: err = %v, want ErrParse", err)
	}
}
