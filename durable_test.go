package trinit

// Durability contract, from round-trip losslessness to crash recovery:
//
//   - Persist/Open and SaveSnapshot/LoadSnapshot reproduce the engine
//     exactly — Stats, Predicates, rules, token-index resolutions, and
//     query answers byte for byte;
//   - pre-freeze ingest and post-freeze rule edits are write-ahead
//     logged, so an engine killed without Close reopens to every
//     acknowledged mutation and nothing else;
//   - TestCrashRecoveryDifferential kills the engine at every I/O fault
//     point (torn append, short snapshot write, failed fsync, kill
//     before/after the rename) and proves the reopened engine answers
//     the full 70-query workload byte-identically to a never-crashed
//     oracle — or refuses with ErrCorrupt, never a silent partial store.
//
// Run with -race; CI gates on the differential by name.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"trinit/internal/faultinject"
	"trinit/internal/store"
)

func openDir(t *testing.T, dir string) (*Engine, *RecoveryInfo) {
	t.Helper()
	e, info, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e, info
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// sameEngineState asserts two engines are observationally identical:
// stats, predicate statistics, rules, and token-index resolutions.
func sameEngineState(t *testing.T, want, got *Engine) {
	t.Helper()
	if want.Stats() != got.Stats() {
		t.Fatalf("Stats differ:\n want %+v\n got  %+v", want.Stats(), got.Stats())
	}
	wp, gp := want.st.Predicates(), got.st.Predicates()
	if len(wp) != len(gp) {
		t.Fatalf("predicate stats: %d vs %d entries", len(wp), len(gp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("predicate stat %d differs: %+v vs %+v", i, wp[i], gp[i])
		}
	}
	wr, gr := want.Rules(), got.Rules()
	if len(wr) != len(gr) {
		t.Fatalf("rules: %d vs %d", len(wr), len(gr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, wr[i], gr[i])
		}
	}
	// Token-index resolutions: the same phrase resolves to the same
	// scored list on both sides.
	for _, probe := range []string{"lectured at", "won", "institute", "advisor"} {
		ws := want.st.MatchToken(probe, store.MaskAny, 0.1, 16)
		gs := got.st.MatchToken(probe, store.MaskAny, 0.1, 16)
		if len(ws) != len(gs) {
			t.Fatalf("MatchToken(%q): %d vs %d results", probe, len(ws), len(gs))
		}
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("MatchToken(%q) result %d differs: %+v vs %+v", probe, i, ws[i], gs[i])
			}
		}
	}
}

// TestSnapshotRoundTripLossless: the synthetic engine — the largest
// store the test suite builds, with mined rules and a corpus-built
// token index — survives SaveSnapshot/LoadSnapshot with no observable
// difference, including byte-identical answers on its workload.
func TestSnapshotRoundTripLossless(t *testing.T) {
	e, queries := syntheticWorkload(t)
	path := filepath.Join(t.TempDir(), "synthetic.snap")
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameEngineState(t, e, back)
	for i, q := range queries {
		if i >= 20 {
			break
		}
		a, err1 := e.QueryContext(context.Background(), q.Text)
		b, err2 := back.QueryContext(context.Background(), q.Text)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", q.ID, err1, err2)
		}
		if answersJSON(t, a) != answersJSON(t, b) {
			t.Fatalf("%s: answers differ after snapshot round trip", q.ID)
		}
	}
}

// TestPersistOpenRoundTrip: a frozen in-memory engine attaches to a
// data directory and reopens identically.
func TestPersistOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	demo := NewDemoEngine()
	if err := demo.Persist(dir); err != nil {
		t.Fatal(err)
	}
	if err := demo.Persist(dir); err == nil {
		t.Fatal("second Persist into the same directory accepted")
	}
	if err := demo.Close(); err != nil {
		t.Fatal(err)
	}

	back, info := openDir(t, dir)
	defer back.Close()
	if info.SnapshotEpoch != 1 || info.WALReplayed != 0 || info.TornBytes != 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	if info.IndexesRebuilt {
		t.Fatal("current-version snapshot should load indexes eagerly")
	}
	sameEngineState(t, NewDemoEngine(), back)
	res, err := back.Query("AlbertEinstein hasAdvisor ?x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 || res.Answers[0].Bindings["x"] != "AlfredKleiner" {
		t.Fatalf("recovered engine lost the demo answer: %+v", res.Answers)
	}
}

// TestOpenEmptyDirIngestRecovery: Open on an empty directory starts an
// unfrozen engine whose batch ingest is write-ahead logged; a crash
// without Close loses nothing acknowledged, and a later Checkpoint
// folds the log into a snapshot.
func TestOpenEmptyDirIngestRecovery(t *testing.T) {
	dir := t.TempDir()
	e, info := openDir(t, dir)
	if info.SnapshotEpoch != 0 || e.Frozen() {
		t.Fatalf("empty dir opened frozen or at epoch %d", info.SnapshotEpoch)
	}
	if err := e.AddKGFact("AlbertEinstein", "bornIn", "Ulm"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTokenTriple("AlbertEinstein", "won Nobel for", "the photoelectric effect", 0.9, "doc-1", "He won."); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the engine without Close.

	re, info := openDir(t, dir)
	if info.WALReplayed != 2 || info.TornBytes != 0 {
		t.Fatalf("recovery info after ingest: %+v", info)
	}
	if re.Stats().Triples != 2 {
		t.Fatalf("recovered %d triples, want 2", re.Stats().Triples)
	}
	re.Freeze()
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	final, info := openDir(t, dir)
	defer final.Close()
	if info.SnapshotEpoch != 1 || info.WALReplayed != 0 {
		t.Fatalf("recovery info after checkpoint: %+v", info)
	}
	if !final.Frozen() || final.Stats().Triples != 2 {
		t.Fatalf("post-checkpoint engine: frozen=%v triples=%d", final.Frozen(), final.Stats().Triples)
	}
	res, err := final.Query("AlbertEinstein ?p ?o")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("post-checkpoint query answers: %d, want 2", len(res.Answers))
	}
}

// TestRuleEditsSurviveRestart: add/remove/clear are logged ahead of
// publication; every acknowledged edit survives a crash, in order.
func TestRuleEditsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	demo := NewDemoEngine()
	if err := demo.Persist(dir); err != nil {
		t.Fatal(err)
	}
	base := len(demo.Rules())
	if err := demo.AddRule("extra-1", "?x bornIn ?y => ?x 'born in' ?y", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := demo.AddRule("extra-2", "?x diedIn ?y => ?x 'died in' ?y", 0.5); err != nil {
		t.Fatal(err)
	}
	if !demo.RemoveRule("extra-1") {
		t.Fatal("RemoveRule(extra-1) = false")
	}
	// Crash without Close.

	re, info := openDir(t, dir)
	if info.WALReplayed != 3 {
		t.Fatalf("replayed %d records, want 3", info.WALReplayed)
	}
	rules := re.Rules()
	if len(rules) != base+1 || rules[len(rules)-1].ID != "extra-2" {
		t.Fatalf("recovered rules: %+v", rules)
	}
	re.ClearRules()
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	final, info := openDir(t, dir)
	defer final.Close()
	if len(final.Rules()) != 0 {
		t.Fatalf("clear did not survive: %+v", final.Rules())
	}
	if info.WALReplayed != 4 {
		t.Fatalf("replayed %d records, want 4", info.WALReplayed)
	}
}

var errDisk = errors.New("injected disk failure")

// TestDurabilityFailStop: after a write-ahead failure the engine
// refuses further durable mutations with the original error — appending
// past a torn tail would turn it into mid-file corruption — and Close
// surfaces the sticky error.
func TestDurabilityFailStop(t *testing.T) {
	dir := t.TempDir()
	demo := NewDemoEngine()
	if err := demo.Persist(dir); err != nil {
		t.Fatal(err)
	}
	rulesBefore := len(demo.Rules())
	defer faultinject.NewScript().
		ErrorOn(faultinject.SiteWALAppend, "rule-add", 1, errDisk).
		Install()()

	if err := demo.AddRule("doomed", "?x bornIn ?y => ?x 'born in' ?y", 0.5); !errors.Is(err, errDisk) {
		t.Fatalf("AddRule under fault: %v", err)
	}
	if len(demo.Rules()) != rulesBefore {
		t.Fatal("failed AddRule still published the rule")
	}
	faultinject.Clear()
	// The fault is gone but durability has failed stop.
	if err := demo.AddRule("after", "?x bornIn ?y => ?x 'born in' ?y", 0.5); err == nil || !strings.Contains(err.Error(), "earlier failure") {
		t.Fatalf("AddRule after fail-stop: %v", err)
	}
	if demo.RemoveRule("fig4-1") {
		t.Fatal("RemoveRule succeeded on a fail-stopped engine")
	}
	if err := demo.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded on a fail-stopped engine")
	}
	if err := demo.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close did not surface the sticky error: %v", err)
	}

	// Recovery lands on the last acknowledged state: the torn record is
	// truncated away.
	re, info := openDir(t, dir)
	defer re.Close()
	if info.TornBytes == 0 {
		t.Fatal("torn append left no torn tail")
	}
	if len(re.Rules()) != rulesBefore {
		t.Fatalf("recovered %d rules, want %d", len(re.Rules()), rulesBefore)
	}
}

// --- the crash-recovery chaos differential ---

const chaosRuleID = "chaos-affil"

var (
	synthSnapOnce sync.Once
	synthSnapPath string
	synthSnapErr  error
)

// synthSeedSnapshot writes the shared synthetic engine's snapshot once
// per test binary and returns its path; scenario directories are seeded
// by copying it. The shared engine itself is never made durable.
func synthSeedSnapshot(t *testing.T) string {
	t.Helper()
	e, _ := syntheticWorkload(t)
	synthSnapOnce.Do(func() {
		dir, err := os.MkdirTemp("", "trinit-seed")
		if err != nil {
			synthSnapErr = err
			return
		}
		synthSnapPath = filepath.Join(dir, "snapshot.trnt")
		synthSnapErr = e.SaveSnapshot(synthSnapPath)
	})
	if synthSnapErr != nil {
		t.Fatal(synthSnapErr)
	}
	return synthSnapPath
}

func TestCrashRecoveryDifferential(t *testing.T) {
	_, queries := syntheticWorkload(t)
	seed := synthSeedSnapshot(t)
	newDir := func() string {
		dir := t.TempDir()
		copyFile(t, seed, filepath.Join(dir, "snapshot.trnt"))
		return dir
	}
	workload := func(e *Engine) map[string]string {
		out := make(map[string]string, len(queries))
		for _, q := range queries {
			res, err := e.QueryContext(context.Background(), q.Text)
			if err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			out[q.ID] = answersJSON(t, res)
		}
		return out
	}
	compare := func(name string, got, want map[string]string) {
		for _, q := range queries {
			if got[q.ID] != want[q.ID] {
				t.Fatalf("%s: %s answers differ from the never-crashed oracle\n got:  %s\n want: %s",
					name, q.ID, got[q.ID], want[q.ID])
			}
		}
	}
	addChaosRule := func(e *Engine) error {
		return e.AddRule(chaosRuleID, "?x affiliation ?y => ?x 'lectured at' ?y", 0.9)
	}

	// Never-crashed oracles: one with the seed state, one with the chaos
	// rule acknowledged, one with a batch of facts ingested live.
	oracleBaseEngine, _ := openDir(t, newDir())
	oracleBase := workload(oracleBaseEngine)
	// The ingest batch references entities the seed world already binds,
	// so the new facts land inside answers the workload actually ranks.
	seedRes, err := oracleBaseEngine.QueryContext(context.Background(), "?x bornIn ?y")
	if err != nil || len(seedRes.Answers) == 0 {
		t.Fatalf("seed probe query: %v (%d answers)", err, len(seedRes.Answers))
	}
	person, city := seedRes.Answers[0].Bindings["x"], seedRes.Answers[0].Bindings["y"]
	ingestBatch := []Fact{
		{Subject: "IngestNewcomer", Predicate: "bornIn", Object: city},
		{Subject: person, Predicate: "hasWonPrize", Object: "IngestPrize"},
		{Subject: person, Predicate: "lectured at", Object: "IngestInstitute", XKG: true, Confidence: 0.99, Doc: "ingest-doc", Sentence: "ingest-sentence"},
	}
	oracleBaseEngine.Close()
	oracleIngestEngine, _ := openDir(t, newDir())
	if _, err := oracleIngestEngine.IngestFacts(ingestBatch); err != nil {
		t.Fatal(err)
	}
	oracleIngest := workload(oracleIngestEngine)
	oracleIngestEngine.Close()
	oracleRuleEngine, _ := openDir(t, newDir())
	if err := addChaosRule(oracleRuleEngine); err != nil {
		t.Fatal(err)
	}
	oracleRule := workload(oracleRuleEngine)
	oracleRuleEngine.Close()
	// The rule must matter, or half the scenarios prove nothing.
	differs := false
	for id := range oracleBase {
		if oracleBase[id] != oracleRule[id] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("chaos rule changes no workload answer; the differential is vacuous")
	}
	differs = false
	for id := range oracleBase {
		if oracleBase[id] != oracleIngest[id] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("ingest batch changes no workload answer; the differential is vacuous")
	}

	scenarios := []struct {
		name string
		// wreck mutates the directory the way a crash at one fault point
		// would, returning which oracle the recovered engine must match.
		wreck func(t *testing.T, dir string) string
		// corrupt marks scenarios whose reopen must refuse with ErrCorrupt.
		corrupt bool
		check   func(t *testing.T, info *RecoveryInfo)
	}{
		{
			name: "torn-wal-append",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteWALAppend, "rule-add", 1, errDisk).
					Install()()
				if err := addChaosRule(e); !errors.Is(err, errDisk) {
					t.Fatalf("AddRule under torn append: %v", err)
				}
				return "base" // never acknowledged → must not reappear
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.TornBytes == 0 {
					t.Fatal("no torn tail truncated")
				}
			},
		},
		{
			name: "acked-rule-then-kill",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				return "rule" // acknowledged → must survive the kill
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.WALReplayed != 1 {
					t.Fatalf("replayed %d records, want 1", info.WALReplayed)
				}
			},
		},
		{
			name: "checkpoint-short-write",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteSnapshotWrite, "", 4, errDisk).
					Install()()
				if err := e.Checkpoint(); !errors.Is(err, errDisk) {
					t.Fatalf("Checkpoint under short write: %v", err)
				}
				return "rule"
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.SnapshotEpoch != 1 || info.WALReplayed != 1 {
					t.Fatalf("recovery info: %+v", info)
				}
			},
		},
		{
			name: "checkpoint-fsync-error",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteFsync, "snapshot", 1, errDisk).
					Install()()
				if err := e.Checkpoint(); !errors.Is(err, errDisk) {
					t.Fatalf("Checkpoint under fsync error: %v", err)
				}
				return "rule"
			},
		},
		{
			name: "kill-before-rename",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteRename, "before", 1, errDisk).
					Install()()
				if err := e.Checkpoint(); !errors.Is(err, errDisk) {
					t.Fatalf("Checkpoint under kill-before-rename: %v", err)
				}
				return "rule"
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.SnapshotEpoch != 1 || info.WALReplayed != 1 {
					t.Fatalf("recovery info: %+v", info)
				}
			},
		},
		{
			name: "kill-after-rename",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteRename, "after", 1, errDisk).
					Install()()
				if err := e.Checkpoint(); !errors.Is(err, errDisk) {
					t.Fatalf("Checkpoint under kill-after-rename: %v", err)
				}
				return "rule" // the published snapshot already folds the rule in
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				// The new snapshot landed but the log never rotated: its
				// records are stale, not corrupt.
				if info.SnapshotEpoch != 2 || info.WALSkipped != 1 || info.WALReplayed != 0 {
					t.Fatalf("recovery info: %+v", info)
				}
			},
		},
		{
			name: "ingest-then-kill",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if _, err := e.IngestFacts(ingestBatch); err != nil {
					t.Fatal(err)
				}
				return "ingest" // acknowledged → the batch must survive the kill
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.WALReplayed == 0 {
					t.Fatal("no ingest records replayed")
				}
			},
		},
		{
			name: "torn-ingest-append",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteWALAppend, "triple", 1, errDisk).
					Install()()
				if _, err := e.IngestFacts(ingestBatch); !errors.Is(err, errDisk) {
					t.Fatalf("IngestFacts under torn append: %v", err)
				}
				return "base" // never acknowledged → must not reappear
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.TornBytes == 0 {
					t.Fatal("no torn tail truncated")
				}
			},
		},
		{
			name: "checkpoint-dir-fsync-error",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				// The data-directory fsync after the log rotation fails: the
				// snapshot rename and rotation are already on disk, so the
				// engine fails stop but recovery lands on the new epoch.
				defer faultinject.NewScript().
					ErrorOn(faultinject.SiteFsync, "wal-dir", 1, errDisk).
					Install()()
				if err := e.Checkpoint(); !errors.Is(err, errDisk) {
					t.Fatalf("Checkpoint under directory fsync error: %v", err)
				}
				return "rule"
			},
			check: func(t *testing.T, info *RecoveryInfo) {
				if info.SnapshotEpoch != 2 || info.WALReplayed != 0 {
					t.Fatalf("recovery info: %+v", info)
				}
			},
		},
		{
			name: "wal-mid-file-corruption",
			wreck: func(t *testing.T, dir string) string {
				e, _ := openDir(t, dir)
				if err := addChaosRule(e); err != nil {
					t.Fatal(err)
				}
				if err := e.AddRule("chaos-2", "?x bornIn ?y => ?x 'born in' ?y", 0.4); err != nil {
					t.Fatal(err)
				}
				e.Close()
				// Flip a bit under the first (acknowledged, mid-file) record.
				path := filepath.Join(dir, "wal.log")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[8+8+2] ^= 0x20 // magic + frame header + 2 payload bytes
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return ""
			},
			corrupt: true,
		},
		{
			name: "snapshot-bit-flip",
			wreck: func(t *testing.T, dir string) string {
				path := filepath.Join(dir, "snapshot.trnt")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0x08
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return ""
			},
			corrupt: true,
		},
		{
			name: "snapshot-truncation",
			wreck: func(t *testing.T, dir string) string {
				path := filepath.Join(dir, "snapshot.trnt")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)*3/5], 0o644); err != nil {
					t.Fatal(err)
				}
				return ""
			},
			corrupt: true,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := newDir()
			want := sc.wreck(t, dir)
			faultinject.Clear()

			if sc.corrupt {
				if _, _, err := Open(dir, nil); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open on damaged state: err=%v, want ErrCorrupt", err)
				}
				return
			}

			re, info := openDir(t, dir)
			defer re.Close()
			if sc.check != nil {
				sc.check(t, info)
			}
			if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
				t.Fatalf("stale temp files after recovery: %v", tmp)
			}
			oracle := oracleBase
			switch want {
			case "rule":
				oracle = oracleRule
			case "ingest":
				oracle = oracleIngest
			}
			compare(sc.name, workload(re), oracle)

			// The recovered engine is fully durable again: a fresh
			// acknowledged mutation round-trips through one more kill.
			if want == "base" {
				if err := addChaosRule(re); err != nil {
					t.Fatalf("recovered engine refuses mutations: %v", err)
				}
				re2, _ := openDir(t, dir)
				defer re2.Close()
				compare(sc.name+"/re-mutated", workload(re2), oracleRule)
			}
		})
	}
}
