package trinit

// Sharded-execution contract at the repo level, run with -race:
//
//   - the acceptance differential: on the full 70-query synthetic
//     workload, across every kernel configuration, a sharded run
//     (N in {1, 2, 3, 4} shards, per-shard parallelism P in {1, 4})
//     merges to a ranking byte-identical to the unsharded oracle —
//     bindings and exact score bits; at N=1 the whole answer set
//     including derivations is reflect.DeepEqual to the oracle's;
//   - the bound exchange demonstrably works: across the incremental
//     configurations at N >= 2 the BoundBroadcast counter is positive,
//     i.e. shards really did exchange k-th-score bounds.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/shard"
	"trinit/internal/topk"
)

// sameRanking asserts got and want agree as rankings: same length, and
// position by position the same binding maps and bit-identical scores.
// Derivations are exempt — a shard's winning derivation legitimately
// differs from the oracle's (local triple IDs, local plans) as long as
// it achieves the exact same score.
func sameRanking(t *testing.T, label string, got, want []topk.Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, oracle has %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: answer %d score %v, oracle %v", label, i, got[i].Score, want[i].Score)
		}
		if !reflect.DeepEqual(got[i].Bindings, want[i].Bindings) {
			t.Fatalf("%s: answer %d bindings %v, oracle %v", label, i, got[i].Bindings, want[i].Bindings)
		}
	}
}

// TestShardDifferential is the sharding acceptance differential (the CI
// must-run gate): the complete synthetic workload through every kernel
// configuration, the unsharded oracle against N in {1, 2, 3, 4} shards
// with per-shard scheduler parallelism P in {1, 4}.
func TestShardDifferential(t *testing.T) {
	inst := fullInstance()
	workload := world().Workload(70)
	configs := []struct {
		name string
		opts topk.Options
	}{
		{"exhaustive+hash+semijoin", topk.Options{K: 10, Mode: topk.Exhaustive}},
		{"incremental+hash+semijoin", topk.Options{K: 10, Mode: topk.Incremental}},
		{"incremental+hash", topk.Options{K: 10, Mode: topk.Incremental, NoSemiJoin: true}},
		{"incremental+tuple", topk.Options{K: 10, Mode: topk.Incremental, NoBlockJoin: true}},
		{"exhaustive+tuple", topk.Options{K: 10, Mode: topk.Exhaustive, NoBlockJoin: true}},
		{"incremental+legacy", topk.Options{K: 10, Mode: topk.Incremental, NoHashJoin: true}},
		{"incremental+noplan", topk.Options{K: 10, Mode: topk.Incremental, NoPlan: true}},
		{"incremental+notokenindex", topk.Options{K: 10, Mode: topk.Incremental, NoTokenIndex: true}},
		{"exhaustive+notokenindex", topk.Options{K: 10, Mode: topk.Exhaustive, NoTokenIndex: true}},
	}

	// Parse and expand once per query; the rewrite lists are shared
	// read-only by the oracle and every sharded run.
	queries := make([]*query.Query, len(workload))
	rewrites := make([][]relax.Rewrite, len(workload))
	for qi, wq := range workload {
		q, err := query.Parse(wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		q.Projection = q.ProjectedVars()
		queries[qi] = q
		rewrites[qi] = relax.NewExpander(inst.Rules).Expand(q)
	}

	// Oracle answers once per (config, query), from a warmed evaluator.
	oracle := make([][][]topk.Answer, len(configs))
	for ci, cfg := range configs {
		ev := topk.New(inst.Store, cfg.opts)
		oracle[ci] = make([][]topk.Answer, len(workload))
		for qi := range workload {
			ans, _, err := ev.Run(context.Background(), queries[qi], rewrites[qi], topk.RunConfig{})
			if err != nil {
				t.Fatalf("oracle %s [%s]: %v", workload[qi].ID, cfg.name, err)
			}
			oracle[ci][qi] = ans
		}
	}

	var broadcasts, crossPrunes int64
	for _, n := range []int{1, 2, 3, 4} {
		// One partition per N (partitioning is kernel-independent), one
		// group per configuration over it.
		stores, stats, err := shard.Partition(inst.Store, n, shard.PartitionOptions{})
		if err != nil {
			t.Fatalf("partition N=%d: %v", n, err)
		}
		if n == 1 && stats.Triples[0] != inst.Store.Len() {
			t.Fatalf("N=1 shard holds %d triples, source %d", stats.Triples[0], inst.Store.Len())
		}
		for ci, cfg := range configs {
			g, err := shard.NewGroupFromStores(inst.Store, stores, stats.Replicated, cfg.opts)
			if err != nil {
				t.Fatalf("group N=%d [%s]: %v", n, cfg.name, err)
			}
			for qi, wq := range workload {
				for _, p := range []int{1, 4} {
					label := wq.ID + " [" + cfg.name + "]"
					res, err := g.Run(context.Background(), queries[qi], rewrites[qi], topk.RunConfig{Parallelism: p})
					if err != nil {
						t.Fatalf("%s N=%d P=%d: %v", label, n, p, err)
					}
					sameRanking(t, label, res.Answers, oracle[ci][qi])
					if n == 1 && !reflect.DeepEqual(res.Answers, oracle[ci][qi]) {
						t.Fatalf("%s N=1 P=%d: answers not fully identical to oracle (derivations included)\n got:  %+v\n want: %+v",
							label, p, res.Answers, oracle[ci][qi])
					}
					if len(res.Shards) != len(res.Answers) {
						t.Fatalf("%s N=%d: %d shard attributions for %d answers", label, n, len(res.Shards), len(res.Answers))
					}
					if n >= 2 && cfg.opts.Mode == topk.Incremental {
						broadcasts += res.Broadcasts
						crossPrunes += int64(res.Metrics.CrossShardPrunes)
					}
				}
			}
		}
	}
	if broadcasts == 0 {
		t.Fatal("no bound broadcasts across all incremental sharded runs: the bound exchange is dead")
	}
	if crossPrunes == 0 {
		t.Error("no cross-shard prunes recorded: broadcasts arrived but never cut work")
	}
}
