package trinit

// The chaos differential: the full 70-query synthetic workload runs
// serially and at P∈{2,4} while the fault-injection harness rotates
// faults through it — none, injected latency, worker panics, tiny cost
// budgets, and mid-stream cancellations. The contract under chaos:
//
//   - every query that completes returns answers byte-identical to the
//     fault-free oracle (latency faults change nothing);
//   - every query degraded by a fault returns a partial result with the
//     matching typed error — never a silent empty success;
//   - admission weights balance back to zero, no goroutines leak, and
//     the engine then serves the clean workload byte-identically.
//
// Run with -race; CI gates on this test by name.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"trinit/internal/faultinject"
)

func TestChaosDifferential(t *testing.T) {
	e, queries := syntheticWorkload(t)

	// Fault-free oracle: answers per query. Warm the cache first so the
	// oracle and the post-chaos runs see the same cache state.
	oracle := make(map[string]string, len(queries))
	for _, q := range queries {
		if _, err := e.QueryContext(context.Background(), q.Text); err != nil {
			t.Fatalf("%s: warm: %v", q.ID, err)
		}
		res, err := e.QueryContext(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("%s: oracle: %v", q.ID, err)
		}
		oracle[q.ID] = answersJSON(t, res)
	}

	// Admission stays on for the whole storm so the final drain check
	// proves weight accounting balances under every fault class.
	e.SetAdmissionControl(64, 64)
	defer e.SetAdmissionControl(0, 0)

	statsBefore := e.ServingStats()
	baseline := runtime.NumGoroutine()

	var completed, degraded, panicked, budgeted, canceled int
	for _, p := range []int{1, 2, 4} {
		for i, q := range queries {
			opts := []QueryOption{WithParallelism(p)}
			var script *faultinject.Script
			fault := i % 5
			switch fault {
			case 1: // latency on every rewrite evaluation: slow, not wrong
				script = faultinject.NewScript().
					SleepEvery(faultinject.SiteRewriteEval, "", 200*time.Microsecond)
			case 2: // crash the first rewrite evaluation
				script = faultinject.NewScript().
					PanicOn(faultinject.SiteRewriteEval, "", 1, "chaos: injected crash")
			case 3: // tiny budget: trivial queries finish, the rest degrade
				opts = append(opts, WithBudget(Budget{JoinBranches: 4, HashProbes: 4}))
			}
			if script != nil {
				faultinject.Set(script.Fn)
			}

			var res *Result
			var err error
			if fault == 4 {
				// Cancel from inside the stream after the first admission;
				// queries with no provisional answers complete cleanly.
				ctx, cancel := context.WithCancel(context.Background())
				res, err = e.QueryStream(ctx, q.Text, func(ev AnswerEvent) error {
					if ev.Type == EventProvisional {
						cancel()
					}
					return nil
				}, opts...)
				cancel()
			} else {
				res, err = e.QueryContext(context.Background(), q.Text, opts...)
			}
			faultinject.Clear()

			// Dynamic classification: the injected fault determines which
			// outcomes are legal, the query's cost determines which occurs.
			switch {
			case err == nil:
				completed++
				if res == nil {
					t.Fatalf("P=%d %s fault=%d: nil result without error", p, q.ID, fault)
				}
				if got := answersJSON(t, res); got != oracle[q.ID] {
					t.Fatalf("P=%d %s fault=%d: completed answers differ from oracle\n got:  %s\n want: %s",
						p, q.ID, fault, got, oracle[q.ID])
				}
			case errors.Is(err, ErrInternal):
				if fault != 2 {
					t.Fatalf("P=%d %s fault=%d: unexpected ErrInternal: %v", p, q.ID, fault, err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("P=%d %s: recovered panic without a partial result", p, q.ID)
				}
				degraded++
				panicked++
			case errors.Is(err, ErrBudgetExhausted):
				if fault != 3 {
					t.Fatalf("P=%d %s fault=%d: unexpected ErrBudgetExhausted: %v", p, q.ID, fault, err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("P=%d %s: budget exhaustion without a partial result", p, q.ID)
				}
				degraded++
				budgeted++
			case errors.Is(err, ErrCanceled):
				if fault != 4 {
					t.Fatalf("P=%d %s fault=%d: unexpected ErrCanceled: %v", p, q.ID, fault, err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("P=%d %s: cancellation without a partial result", p, q.ID)
				}
				degraded++
				canceled++
			default:
				t.Fatalf("P=%d %s fault=%d: untyped error %v", p, q.ID, fault, err)
			}
		}
	}

	// The storm must actually have exercised each degradation path.
	if panicked == 0 || budgeted == 0 || canceled == 0 {
		t.Fatalf("storm too gentle: panics=%d budget=%d canceled=%d", panicked, budgeted, canceled)
	}
	if completed == 0 {
		t.Fatal("no query completed under chaos")
	}
	t.Logf("chaos: %d completed, %d degraded (%d panic, %d budget, %d canceled)",
		completed, degraded, panicked, budgeted, canceled)

	// Serving counters moved in step with the classification.
	stats := e.ServingStats()
	if got := stats.PanicsRecovered - statsBefore.PanicsRecovered; got != uint64(panicked) {
		t.Fatalf("PanicsRecovered delta = %d, want %d", got, panicked)
	}
	if got := stats.BudgetExhausted - statsBefore.BudgetExhausted; got != uint64(budgeted) {
		t.Fatalf("BudgetExhausted delta = %d, want %d", got, budgeted)
	}
	if stats.InFlight != 0 {
		t.Fatalf("InFlight = %d after the storm, want 0", stats.InFlight)
	}
	if a := stats.Admission; a.InUse != 0 || a.Queued != 0 {
		t.Fatalf("admission weights leaked: %+v", a)
	}

	// No goroutine leaks: the count settles back to the pre-storm
	// baseline.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("%d goroutines after the storm, baseline %d", n, baseline)
	}

	// The engine is still the same engine: the clean workload is
	// byte-identical to the pre-storm oracle at every width.
	for _, p := range []int{1, 4} {
		for _, q := range queries {
			res, err := e.QueryContext(context.Background(), q.Text, WithParallelism(p))
			if err != nil {
				t.Fatalf("post-chaos P=%d %s: %v", p, q.ID, err)
			}
			if got := answersJSON(t, res); got != oracle[q.ID] {
				t.Fatalf("post-chaos P=%d %s: answers differ from oracle", p, q.ID)
			}
		}
	}
}
