package trinit

// Concurrency contract of the frozen engine: Query, Complete and Stats
// run in parallel without an engine-wide lock, and every concurrent query
// returns exactly the serial baseline's answers. Run with -race.

import (
	"fmt"
	"sync"
	"testing"
)

// serialBaseline evaluates every query once on a fresh engine.
func serialBaseline(t *testing.T, queries []string) map[string]*Result {
	t.Helper()
	e := NewDemoEngine()
	out := make(map[string]*Result, len(queries))
	for _, qs := range queries {
		res, err := e.Query(qs)
		if err != nil {
			t.Fatalf("baseline %s: %v", qs, err)
		}
		out[qs] = res
	}
	return out
}

func sameAnswers(a, b *Result) error {
	if len(a.Answers) != len(b.Answers) {
		return fmt.Errorf("%d vs %d answers", len(a.Answers), len(b.Answers))
	}
	for i := range a.Answers {
		if a.Answers[i].Score != b.Answers[i].Score {
			return fmt.Errorf("answer %d: score %v vs %v", i, a.Answers[i].Score, b.Answers[i].Score)
		}
		for v, text := range a.Answers[i].Bindings {
			if b.Answers[i].Bindings[v] != text {
				return fmt.Errorf("answer %d: binding ?%s = %q vs %q", i, v, text, b.Answers[i].Bindings[v])
			}
		}
	}
	return nil
}

// TestConcurrentQueriesMatchSerialBaseline hammers one frozen engine with
// mixed Query / Complete / Stats / CacheStats traffic from many
// goroutines and asserts every query result equals the serial baseline.
func TestConcurrentQueriesMatchSerialBaseline(t *testing.T) {
	queries := []string{
		"?x bornIn Germany",
		"AlbertEinstein hasAdvisor ?x",
		"SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }",
		"AlbertEinstein 'won nobel for' ?x",
		"?x bornIn ?y . ?y locatedIn ?z",
		"?x ?p PrincetonUniversity",
	}
	baseline := serialBaseline(t, queries)

	e := NewDemoEngine()
	const goroutines = 12
	const iters = 8
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0, 1: // queries dominate, as in real traffic
					qs := queries[(g*iters+i)%len(queries)]
					res, err := e.Query(qs)
					if err != nil {
						errs <- fmt.Errorf("%s: %v", qs, err)
						continue
					}
					if err := sameAnswers(baseline[qs], res); err != nil {
						errs <- fmt.Errorf("%s: %v", qs, err)
					}
				case 2:
					if comps := e.Complete("Al", 5); len(comps) == 0 {
						errs <- fmt.Errorf("no completions for Al")
					}
					e.CacheStats()
				default:
					if s := e.Stats(); s.Triples == 0 {
						errs <- fmt.Errorf("empty stats")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := e.CacheStats(); s.Misses == 0 || s.Hits == 0 {
		t.Errorf("cache saw no reuse: %+v", s)
	}
}

// TestConcurrentQueriesWithRuleMutation interleaves rule mutations with
// queries: the copy-on-write rule set must never corrupt an in-flight
// query. The mutated rules can never match demo facts, so answers stay
// comparable to the baseline throughout.
func TestConcurrentQueriesWithRuleMutation(t *testing.T) {
	const qs = "AlbertEinstein hasAdvisor ?x"
	baseline := serialBaseline(t, []string{qs})[qs]

	e := NewDemoEngine()
	errs := make(chan error, 256)
	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() { // mutator: add and remove inert rules until told to stop
		defer mutator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("inert-%d", i)
			if err := e.AddRule(id, "?x neverMatches"+id+" ?y => ?x alsoNever ?y", 0.5); err != nil {
				errs <- err
			}
			if i%2 == 0 {
				e.RemoveRule(id)
			}
		}
	}()
	var queriers sync.WaitGroup
	for g := 0; g < 6; g++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; i < 10; i++ {
				res, err := e.Query(qs)
				if err != nil {
					errs <- err
					continue
				}
				if err := sameAnswers(baseline, res); err != nil {
					errs <- err
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	mutator.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
