package trinit

// Benchmarks regenerating the paper's evaluation artefacts, one per
// experiment of DESIGN.md §4 (E1–E6), plus micro-benchmarks for the main
// substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks report the same quantities as cmd/trinit-bench, but
// under the testing.B harness so regressions show up in CI.

import (
	"context"
	"sync"
	"testing"

	"trinit/internal/dataset"
	"trinit/internal/experiments"
	"trinit/internal/openie"
	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/score"
	"trinit/internal/topk"
)

var (
	benchWorldOnce sync.Once
	benchWorld     *dataset.World
	benchInstOnce  sync.Once
	benchInst      *experiments.Instance
)

func world() *dataset.World {
	benchWorldOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.People = 300
		benchWorld = dataset.Generate(cfg)
	})
	return benchWorld
}

func fullInstance() *experiments.Instance {
	benchInstOnce.Do(func() {
		benchInst = experiments.Build(world(), experiments.System{Name: "full", UseXKG: true, UseRelax: true})
	})
	return benchInst
}

// BenchmarkE1QueryProcessing reproduces the §4 effectiveness comparison:
// the full 70-query workload on the full system (NDCG is validated in
// internal/experiments tests; here the cost of producing it is measured).
func BenchmarkE1QueryProcessing(b *testing.B) {
	inst := fullInstance()
	workload := world().Workload(70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wq := workload[i%len(workload)]
		if _, _, err := inst.RunQuery(wq.Text, wq.Var, 10, topk.Incremental); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2RuleMining measures mining the relaxation rules with the §3
// weight formula over the full XKG.
func BenchmarkE2RuleMining(b *testing.B) {
	inst := fullInstance()
	opts := relax.MiningOptions{MinSupport: 2, MinWeight: 0.1, IncludeInverse: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules := relax.Mine(inst.Store, opts)
		if len(rules) == 0 {
			b.Fatal("no rules mined")
		}
	}
}

// BenchmarkE3DemoScenario replays the users A-D scenario (Figures 1-4).
func BenchmarkE3DemoScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunE3()
		if len(rows) != 4 {
			b.Fatal("demo scenario broken")
		}
	}
}

// BenchmarkE4XKGConstruction measures the full §5 pipeline: Open IE over
// the corpus, entity linking, and store construction.
func BenchmarkE4XKGConstruction(b *testing.B) {
	w := world()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.RunE4(w)
		if r.Stats.XKGTriples == 0 {
			b.Fatal("no XKG triples")
		}
	}
}

// BenchmarkE5TopKIncremental and ...Exhaustive measure the §4 efficiency
// claim: the incremental algorithm touches fewer posting-list entries and
// evaluates fewer rewrites than exhaustively materialising the rewrite
// space. Compare ns/op between the two.
func BenchmarkE5TopKIncremental(b *testing.B) { benchE5(b, topk.Incremental) }

// BenchmarkE5TopKExhaustive is the baseline counterpart.
func BenchmarkE5TopKExhaustive(b *testing.B) { benchE5(b, topk.Exhaustive) }

func benchE5(b *testing.B, mode topk.Mode) {
	inst := fullInstance()
	workload := world().Workload(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wq := workload[i%len(workload)]
		if _, _, err := inst.RunQuery(wq.Text, wq.Var, 10, mode); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Suggest measures the §5 suggestion features over the world.
func BenchmarkE6Suggest(b *testing.B) {
	w := world()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.RunE6(w)
		if r.TokenQueries == 0 {
			b.Fatal("no suggestions computed")
		}
	}
}

// --- micro-benchmarks -------------------------------------------------

// BenchmarkStoreMatch measures a bound-predicate index scan.
func BenchmarkStoreMatch(b *testing.B) {
	inst := fullInstance()
	p, ok := inst.Store.Dict().Lookup(rdf.Resource("affiliation"))
	if !ok {
		b.Fatal("predicate missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(inst.Store.Match(rdf.NoTerm, p, rdf.NoTerm)) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkTokenMatch measures resolving a textual token to candidates.
func BenchmarkTokenMatch(b *testing.B) {
	inst := fullInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Store.MatchToken("worked at", 1<<rdf.KindToken, 0.3, 10)
	}
}

// BenchmarkQueryParse measures the extended triple-pattern parser.
func BenchmarkQueryParse(b *testing.B) {
	const q = "SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x 'housed in' ?y . ?y member IvyLeague } LIMIT 5"
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenIEExtraction measures the ReVerb-style extractor.
func BenchmarkOpenIEExtraction(b *testing.B) {
	const doc = "Einstein won a Nobel for his discovery of the photoelectric effect. " +
		"The IAS was housed in Princeton. Einstein lectured at Princeton University. " +
		"Alden Ackermann worked at Northford University and studied under Berta Brenner."
	for i := 0; i < b.N; i++ {
		if len(openie.ExtractDocument(doc)) == 0 {
			b.Fatal("no extractions")
		}
	}
}

// BenchmarkRewriteExpansion measures rewrite-space expansion.
func BenchmarkRewriteExpansion(b *testing.B) {
	inst := fullInstance()
	q := query.MustParse("?x affiliation ?u . ?u locatedIn Northford")
	q.Projection = q.ProjectedVars()
	exp := relax.NewExpander(inst.Rules)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(exp.Expand(q)) == 0 {
			b.Fatal("no rewrites")
		}
	}
}

// BenchmarkEngineQuery measures a full public-API query round trip on the
// demo engine, including explanation construction.
func BenchmarkEngineQuery(b *testing.B) {
	e := NewDemoEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkE7RuleSourceAblation measures the cumulative rule-source
// ablation (DESIGN.md E7).
func BenchmarkE7RuleSourceAblation(b *testing.B) {
	w := world()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunE7(w, 10)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE8ScoringAblation measures the scoring-model ablation
// (DESIGN.md E8).
func BenchmarkE8ScoringAblation(b *testing.B) {
	w := world()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunE8(w, 10)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEngineQueryParallel exercises the lock-free read path: one
// frozen engine, queries from all procs in parallel against the shared
// match-list cache. Compare ops/s with BenchmarkEngineQuerySerialized
// (the seed's behaviour, emulated with an external mutex) to see the QPS
// scaling the concurrent pipeline buys.
func BenchmarkEngineQueryParallel(b *testing.B) {
	e := NewDemoEngine()
	warmEngine(b, e)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := runDemoQuery(e, i); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkEngineQuerySerialized is the pre-refactor baseline: identical
// traffic, but every query serialised behind one mutex, as the seed's
// engine-wide lock did.
func BenchmarkEngineQuerySerialized(b *testing.B) {
	e := NewDemoEngine()
	warmEngine(b, e)
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			err := runDemoQuery(e, i)
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

var demoBenchQueries = []string{
	"SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }",
	"AlbertEinstein hasAdvisor ?x",
	"?x bornIn Germany",
	"?x bornIn ?y . ?y locatedIn ?z",
}

func runDemoQuery(e *Engine, i int) error {
	_, err := e.Query(demoBenchQueries[i%len(demoBenchQueries)])
	return err
}

func warmEngine(b *testing.B, e *Engine) {
	b.Helper()
	for i := range demoBenchQueries {
		if err := runDemoQuery(e, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerSelectivityOrder and ...TextOrder compare join work
// under the greedy selectivity planner versus query-text pattern order on
// a multi-pattern workload query (the E5 instance). Beyond ns/op, run
// TestPlannerReducesJoinWork / `trinit-bench` for the JoinBranches and
// SortedAccesses deltas.
func BenchmarkPlannerSelectivityOrder(b *testing.B) {
	benchJoinKernel(b, topk.Options{K: 10})
}

// BenchmarkPlannerTextOrder is the NoPlan baseline counterpart.
func BenchmarkPlannerTextOrder(b *testing.B) {
	benchJoinKernel(b, topk.Options{K: 10, NoPlan: true})
}

// BenchmarkJoinKernelScan, ...HashProbe and ...HashSemiJoin compare the
// three join-kernel configurations on the worst-case three-pattern query
// (an unbound-predicate pattern joined through two shared variables):
// full-list scans enumerate hundreds of thousands of branches where the
// hash kernel probes a few dozen buckets. Answers are identical.
func BenchmarkJoinKernelScan(b *testing.B) {
	benchJoinKernel(b, topk.Options{K: 10, NoHashJoin: true})
}

func BenchmarkJoinKernelHashProbe(b *testing.B) {
	benchJoinKernel(b, topk.Options{K: 10, NoSemiJoin: true})
}

func BenchmarkJoinKernelHashSemiJoin(b *testing.B) {
	benchJoinKernel(b, topk.Options{K: 10})
}

// BenchmarkJoinKernelTuple is the tuple-at-a-time ablation of the
// default block kernel (NoBlockJoin), on the same hash+semi-join
// configuration — the block/tuple speedup headline of experiment E5f.
func BenchmarkJoinKernelTuple(b *testing.B) {
	benchJoinKernel(b, topk.Options{K: 10, NoBlockJoin: true})
}

func benchJoinKernel(b *testing.B, opts topk.Options) {
	inst := fullInstance()
	q := query.MustParse("SELECT ?x WHERE { ?x ?p ?y . ?y locatedIn Northford . ?x affiliation ?u }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(inst.Rules).Expand(q)
	ev := topk.New(inst.Store, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, _ := ev.Evaluate(q, rewrites)
		if len(ans) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkRewriteSpaceSerial and ...Parallel compare the serial
// schedule against the parallel rewrite scheduler (P=4) on a
// wide-rewrite workload query: a depth-3 expansion (up to 256 rewrites)
// of the three-pattern join, evaluated against a shared warmed cache.
// Answers are byte-identical (TestParallelByteIdenticalToSerial); the
// parallel variant should be >=2x faster wall-clock on a >=4-core host,
// and degrades to roughly serial cost plus scheduling overhead on one
// core. Run with -benchmem to see the per-rewrite allocation savings of
// the per-worker scratch buffers.
func BenchmarkRewriteSpaceSerial(b *testing.B) { benchRewriteSpace(b, 1) }

func BenchmarkRewriteSpaceParallel(b *testing.B) { benchRewriteSpace(b, 4) }

func benchRewriteSpace(b *testing.B, parallelism int) {
	inst := fullInstance()
	q := query.MustParse("SELECT ?x WHERE { ?x ?p ?y . ?y locatedIn Northford . ?x affiliation ?u }")
	q.Projection = q.ProjectedVars()
	exp := relax.NewExpander(inst.Rules)
	exp.MaxDepth = 3
	exp.MaxRewrites = 256
	rewrites := exp.Expand(q)
	ev := topk.New(inst.Store, topk.Options{K: 10})
	// Warm the match-list cache so the loop measures scheduling and
	// join work, not one-off list builds.
	if ans, _ := ev.Evaluate(q, rewrites); len(ans) == 0 {
		b.Fatal("no answers")
	}
	cfg := topk.RunConfig{NoTrace: true, Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, _, err := ev.Run(context.Background(), q, rewrites, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ans) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkMatcherTokenResolved and ...TokenScan compare match-list
// building for an unbounded token-predicate pattern — the worst case for
// the scan baseline, which walks the whole store and similarity-tests
// every triple, where the resolved matcher touches only the candidate
// ranges surfaced by the inverted token index. Lists are byte-identical.
func BenchmarkMatcherTokenResolved(b *testing.B) { benchMatcher(b, false) }

// BenchmarkMatcherTokenScan is the NoTokenIndex baseline counterpart.
func BenchmarkMatcherTokenScan(b *testing.B) { benchMatcher(b, true) }

func benchMatcher(b *testing.B, noTokenIndex bool) {
	inst := fullInstance()
	m := score.NewMatcher(inst.Store)
	m.NoTokenIndex = noTokenIndex
	p := query.MustParse("?x 'worked at' ?u").Patterns[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.MatchPattern(p)) == 0 {
			b.Fatal("no matches")
		}
	}
}
