package trinit

// Engine-level budget contract: WithBudget degrades an expensive query
// into a partial result with a typed error instead of an unbounded
// evaluation, budgeted answers are a sound subset of the unbudgeted
// oracle, a generous budget changes nothing byte-for-byte, and
// SetDefaultBudget applies engine-wide with WithBudget overriding.
// Run with -race.

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// expensiveQuery joins two open patterns over the synthetic world —
// thousands of join branches, many emitted blocks — so every budget
// dimension has room to trip mid-evaluation.
const expensiveQuery = "?x ?p ?y . ?y ?q ?z"

func assertBudgetDegraded(t *testing.T, res *Result, err error) {
	t.Helper()
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("budget exhaustion must not masquerade as cancellation")
	}
	if res == nil || !res.Partial {
		t.Fatal("want a non-nil partial result on budget exhaustion")
	}
	budgetTraced := false
	for _, tr := range res.Trace {
		if tr.Status == "budget" {
			budgetTraced = true
		}
	}
	if !budgetTraced {
		t.Fatalf("no trace entry with status budget: %+v", res.Trace)
	}
}

// TestWithBudgetExhaustionMidBlockFlush trips the Blocks dimension: the
// block kernel charges whole frontier blocks as it flushes them, so a
// two-block budget stops the join mid-emission.
func TestWithBudgetExhaustionMidBlockFlush(t *testing.T) {
	e, _ := syntheticWorkload(t)
	res, err := e.QueryContext(context.Background(), expensiveQuery,
		WithMode(ModeExhaustive), WithBudget(Budget{Blocks: 2}))
	assertBudgetDegraded(t, res, err)
	if res.Metrics.BlocksEmitted < 2 {
		t.Fatalf("only %d blocks emitted: the Blocks dimension cannot have been what tripped",
			res.Metrics.BlocksEmitted)
	}
}

// TestWithBudgetExhaustionMidSemiJoin trips the HashProbes dimension
// during join preparation — the semi-join/hash phase probes long before
// blocks flush, so a tiny probe budget stops the query in that phase.
func TestWithBudgetExhaustionMidSemiJoin(t *testing.T) {
	e, _ := syntheticWorkload(t)
	res, err := e.QueryContext(context.Background(), expensiveQuery,
		WithMode(ModeExhaustive), WithBudget(Budget{HashProbes: 50}))
	assertBudgetDegraded(t, res, err)
}

// TestBudgetedAnswersSubsetOfOracle: at every parallelism, a budgeted
// run returns only real answers — each present in the unbudgeted
// oracle with a score no higher than the oracle's (max-over-derivations
// only grows as more of the rewrite space is explored).
func TestBudgetedAnswersSubsetOfOracle(t *testing.T) {
	e, queries := syntheticWorkload(t)
	texts := []string{expensiveQuery}
	for _, q := range queries[:10] {
		texts = append(texts, q.Text)
	}
	for _, text := range texts {
		// The oracle needs the *complete* answer set: a budgeted top-k can
		// legitimately surface answers the unbudgeted top-k outranked, but
		// never an answer that does not exist or a score above the truth.
		oracle, err := e.QueryContext(context.Background(), text, WithMode(ModeExhaustive), WithK(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		oracleScore := make(map[string]float64, len(oracle.Answers))
		for _, a := range oracle.Answers {
			oracleScore[bindingsKey(a.Bindings)] = a.Score
		}
		for _, p := range []int{1, 2, 4} {
			for _, budget := range []int64{200, 2000} {
				res, err := e.QueryContext(context.Background(), text,
					WithMode(ModeExhaustive), WithParallelism(p),
					WithBudget(Budget{JoinBranches: budget}))
				if err != nil && !errors.Is(err, ErrBudgetExhausted) {
					t.Fatalf("%s P=%d budget=%d: unexpected error %v", text, p, budget, err)
				}
				if err != nil && (res == nil || !res.Partial) {
					t.Fatalf("%s P=%d budget=%d: exhausted without a partial result", text, p, budget)
				}
				for _, a := range res.Answers {
					want, ok := oracleScore[bindingsKey(a.Bindings)]
					if !ok {
						t.Fatalf("%s P=%d budget=%d: answer %v not in oracle", text, p, budget, a.Bindings)
					}
					if a.Score > want+1e-12 {
						t.Fatalf("%s P=%d budget=%d: answer %v scored %v above oracle %v",
							text, p, budget, a.Bindings, a.Score, want)
					}
				}
			}
		}
	}
}

func bindingsKey(b map[string]string) string {
	var sb strings.Builder
	for _, v := range []string{"x", "y", "z", "p", "q"} {
		if val, ok := b[v]; ok {
			sb.WriteString(v)
			sb.WriteByte('=')
			sb.WriteString(val)
			sb.WriteByte(';')
		}
	}
	return sb.String()
}

// TestGenerousBudgetByteIdentical: a budget that never trips leaves the
// whole Result — answers, explanations, metrics, trace — untouched.
func TestGenerousBudgetByteIdentical(t *testing.T) {
	e, queries := syntheticWorkload(t)
	for _, q := range queries[:10] {
		// Warm the cache so both runs see identical cache metrics.
		if _, err := e.QueryContext(context.Background(), q.Text); err != nil {
			t.Fatal(err)
		}
		plain, err := e.QueryContext(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		budgeted, err := e.QueryContext(context.Background(), q.Text,
			WithBudget(Budget{JoinBranches: 1 << 40, HashProbes: 1 << 40, Blocks: 1 << 40}))
		if err != nil {
			t.Fatalf("%s: generous budget: %v", q.Text, err)
		}
		if a, b := renderResult(t, plain), renderResult(t, budgeted); a != b {
			t.Fatalf("%s: generous budget perturbed the result\n plain:    %s\n budgeted: %s", q.Text, a, b)
		}
	}
}

// TestDefaultBudgetAppliedAndOverridden: SetDefaultBudget governs
// queries with no explicit budget; WithBudget overrides it per query;
// ServingStats counts each exhaustion.
func TestDefaultBudgetAppliedAndOverridden(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	e, _, err := NewSyntheticEngine(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetDefaultBudget(Budget{JoinBranches: 100})
	before := e.ServingStats().BudgetExhausted

	res, qerr := e.QueryContext(context.Background(), expensiveQuery, WithMode(ModeExhaustive))
	assertBudgetDegraded(t, res, qerr)
	if got := e.ServingStats().BudgetExhausted; got != before+1 {
		t.Fatalf("BudgetExhausted = %d, want %d", got, before+1)
	}

	// An explicit generous per-query budget overrides the tight default.
	if _, err := e.QueryContext(context.Background(), expensiveQuery, WithMode(ModeExhaustive),
		WithBudget(Budget{JoinBranches: 1 << 40})); err != nil {
		t.Fatalf("WithBudget did not override the default budget: %v", err)
	}

	// Clearing the default restores unbudgeted evaluation.
	e.SetDefaultBudget(Budget{})
	if _, err := e.QueryContext(context.Background(), expensiveQuery, WithMode(ModeExhaustive)); err != nil {
		t.Fatalf("after clearing default budget: %v", err)
	}
}
