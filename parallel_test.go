package trinit

// Parallel rewrite-scheduler contract at the repo level, run with -race:
//
//   - the acceptance differential: on the full 70-query synthetic
//     workload, across every kernel configuration, parallel execution
//     (P in {1, 2, 4, 8}) returns answers byte-identical to the serial
//     schedule — bindings, scores, derivations, plans and all;
//   - pool x pool: concurrent *queries* each running with internal
//     parallelism > 1 against one engine return the serial baseline's
//     answers;
//   - a mid-flight cancellation of a parallel query drains its workers
//     and surfaces a Partial result with ErrCanceled.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/topk"
)

// TestParallelByteIdenticalToSerial is the acceptance differential: the
// complete synthetic workload through every kernel configuration, the
// serial schedule against parallelism 1, 2, 4 and 8. reflect.DeepEqual
// over the full []topk.Answer pins bindings, exact scores, and the
// stored derivation (triples, probabilities, plan, rewrite) — the
// canonical-derivation tie-break must make even equal-scoring
// derivation choices identical.
func TestParallelByteIdenticalToSerial(t *testing.T) {
	inst := fullInstance()
	workload := world().Workload(70)
	configs := []struct {
		name string
		opts topk.Options
	}{
		{"exhaustive+hash+semijoin", topk.Options{K: 10, Mode: topk.Exhaustive}},
		{"incremental+hash+semijoin", topk.Options{K: 10, Mode: topk.Incremental}},
		{"incremental+hash", topk.Options{K: 10, Mode: topk.Incremental, NoSemiJoin: true}},
		{"incremental+tuple", topk.Options{K: 10, Mode: topk.Incremental, NoBlockJoin: true}},
		{"exhaustive+tuple", topk.Options{K: 10, Mode: topk.Exhaustive, NoBlockJoin: true}},
		{"incremental+legacy", topk.Options{K: 10, Mode: topk.Incremental, NoHashJoin: true}},
		{"incremental+noplan", topk.Options{K: 10, Mode: topk.Incremental, NoPlan: true}},
		{"incremental+notokenindex", topk.Options{K: 10, Mode: topk.Incremental, NoTokenIndex: true}},
		{"exhaustive+notokenindex", topk.Options{K: 10, Mode: topk.Exhaustive, NoTokenIndex: true}},
	}
	// One warmed evaluator per configuration: every width probes the
	// same shared cache, as pooled executors do in the engine.
	evs := make([]*topk.Evaluator, len(configs))
	for i, cfg := range configs {
		evs[i] = topk.New(inst.Store, cfg.opts)
	}
	for _, wq := range workload {
		q, err := query.Parse(wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		for ci, cfg := range configs {
			serial, _, err := evs[ci].Run(context.Background(), q, rewrites, topk.RunConfig{})
			if err != nil {
				t.Fatalf("%s [%s]: %v", wq.ID, cfg.name, err)
			}
			for _, p := range []int{1, 2, 4, 8} {
				got, _, err := evs[ci].Run(context.Background(), q, rewrites, topk.RunConfig{Parallelism: p})
				if err != nil {
					t.Fatalf("%s [%s] P=%d: %v", wq.ID, cfg.name, p, err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("%s [%s] P=%d: parallel answers differ from serial\n got:  %+v\n want: %+v",
						wq.ID, cfg.name, p, got, serial)
				}
			}
		}
	}
}

// answersJSON serialises just the answers (bindings, scores, rendered
// explanations) — the parts of a Result that must be byte-identical
// under parallelism. Metrics and trace legitimately vary with worker
// timing.
func answersJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res.Answers)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWithParallelismAnswersMatchSerial pins the public API: the same
// query through QueryContext with and without WithParallelism yields
// byte-identical answers, eager explanations included (explanations
// render from the stored derivation, so this also covers derivation
// identity end to end).
func TestWithParallelismAnswersMatchSerial(t *testing.T) {
	e, queries := syntheticWorkload(t)
	for i, wq := range queries {
		if i >= 20 {
			break
		}
		serial, err := e.QueryContext(context.Background(), wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		par, err := e.QueryContext(context.Background(), wq.Text, WithParallelism(4))
		if err != nil {
			t.Fatalf("%s parallel: %v", wq.ID, err)
		}
		if a, b := answersJSON(t, serial), answersJSON(t, par); a != b {
			t.Fatalf("%s: parallel answers differ\n serial:   %s\n parallel: %s", wq.ID, a, b)
		}
	}
}

// TestConcurrentParallelQueriesMatchSerialBaseline is the pool x pool
// stress test: many concurrent queries, each itself running with
// internal parallelism, against one engine — executor pool interacting
// with scheduler worker pools, all sharing one match-list cache.
func TestConcurrentParallelQueriesMatchSerialBaseline(t *testing.T) {
	e, queries := syntheticWorkload(t)
	texts := make([]string, 0, 12)
	for i, wq := range queries {
		if i >= 12 {
			break
		}
		texts = append(texts, wq.Text)
	}
	baseline := make(map[string]string, len(texts))
	for _, text := range texts {
		res, err := e.QueryContext(context.Background(), text)
		if err != nil {
			t.Fatalf("baseline %s: %v", text, err)
		}
		baseline[text] = answersJSON(t, res)
	}

	const goroutines = 8
	const iters = 6
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				text := texts[(g*iters+i)%len(texts)]
				// Alternate parallel widths, with plain serial queries
				// mixed into the same traffic.
				opts := []QueryOption{WithParallelism(2 + 2*(i%4))}
				if (g+i)%3 == 0 {
					opts = nil
				}
				res, err := e.QueryContext(context.Background(), text, opts...)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", text, err)
					continue
				}
				if got := answersJSON(t, res); got != baseline[text] {
					errs <- fmt.Errorf("%s: answers diverged from serial baseline under pool x pool load", text)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelQueryCancellationDrainsWorkers cancels a parallel query
// from its own stream callback — after the first admission — and
// asserts the run surfaces a Partial result wrapping ErrCanceled while
// every scheduler worker unwinds (goroutine count settles back).
func TestParallelQueryCancellationDrainsWorkers(t *testing.T) {
	e, _ := syntheticWorkload(t)
	const text = "?x affiliation ?u . ?u locatedIn Northford"
	// Warm the cache so the measured run spends its time in the join
	// kernel, where cancellation polling happens.
	if _, err := e.QueryContext(context.Background(), text); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	provisional := 0
	res, err := e.QueryStream(ctx, text, func(ev AnswerEvent) error {
		if ev.Type == EventProvisional {
			provisional++
			cancel()
		}
		return nil
	}, WithMode(ModeExhaustive), WithParallelism(8))
	if provisional == 0 {
		t.Fatal("no provisional event before cancellation")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("want a partial result after mid-flight cancellation of a parallel run")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("%d goroutines after cancelled parallel query, baseline %d: workers not drained", n, before)
	}
}
