package trinit

// Differential contract of the block-at-a-time join kernel, run with
// -race in CI:
//
//   - randomised fuzz: the block kernel and its tuple-at-a-time ablation
//     (NoBlockJoin) return byte-identical rankings on randomly generated
//     join queries, in both incremental and exhaustive mode, serial and
//     parallel — and the block kernel's probe memoisation never issues
//     more hash probes than the tuple kernel does;
//   - cancellation: a cancel raised from a streaming callback mid-join is
//     observed at a block boundary, drains the join, and surfaces a
//     Partial result with ErrCanceled.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/topk"
)

// TestBlockKernelDifferentialFuzz generates random 1-3 pattern queries
// over the synthetic world's vocabulary (resources, literals and noisy
// textual tokens) and pins block against tuple execution: renderAnswers
// compares bindings and exact scores (%.17g round-trips float64), so a
// byte-equal rendering means byte-identical rankings.
func TestBlockKernelDifferentialFuzz(t *testing.T) {
	inst := fullInstance()
	v := newPatternVocab(inst.Store, 31)
	type pair struct {
		mode  topk.Mode
		tuple *topk.Evaluator
		block *topk.Evaluator
	}
	pairs := []pair{
		{topk.Incremental,
			topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Incremental, NoBlockJoin: true}),
			topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Incremental})},
		{topk.Exhaustive,
			topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Exhaustive, NoBlockJoin: true}),
			topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Exhaustive})},
	}
	for round := 0; round < 60; round++ {
		q := &query.Query{Patterns: []query.Pattern{v.pattern()}}
		for extra := v.rng.Intn(3); extra > 0; extra-- {
			q.Patterns = append(q.Patterns, v.pattern())
		}
		if len(q.ProjectedVars()) == 0 {
			continue // no variables, nothing to differentiate
		}
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		for _, p := range pairs {
			tuple, tm := p.tuple.Evaluate(q, rewrites)
			block, bm := p.block.Evaluate(q, rewrites)
			want := renderAnswers(inst.Store, tuple)
			got := renderAnswers(inst.Store, block)
			if got != want {
				t.Fatalf("round %d (%v): query %s: block answers differ\n--- block\n%s--- tuple\n%s",
					round, p.mode, q, got, want)
			}
			// Probe memoisation: consecutive frontier rows sharing
			// their bound-slot key reuse one probe, so the block
			// kernel can only issue fewer. Asserted in exhaustive
			// mode only, where both kernels provably enumerate the
			// same branches (incremental pruning granularity differs).
			if p.mode == topk.Exhaustive && bm.HashProbes > tm.HashProbes {
				t.Fatalf("round %d: query %s: block issued %d probes, tuple %d",
					round, q, bm.HashProbes, tm.HashProbes)
			}
			// Parallel schedules of the block kernel must agree with
			// its serial run answer-for-answer, derivations included.
			for _, par := range []int{1, 4} {
				pans, _, err := p.block.Run(context.Background(), q, rewrites, topk.RunConfig{Parallelism: par})
				if err != nil {
					t.Fatalf("round %d (%v) P=%d: %v", round, p.mode, par, err)
				}
				if !reflect.DeepEqual(pans, block) {
					t.Fatalf("round %d (%v) P=%d: query %s: parallel block answers differ from serial",
						round, p.mode, par, q)
				}
			}
		}
	}
}

// TestBlockKernelMidBlockCancellation cancels the request from inside
// the stream callback while the block kernel is mid-join on a
// multi-pattern query. The cancel lands between two block flushes; the
// kernel must observe it at the next block boundary, unwind across all
// join depths, and return the answers found so far as a partial result.
func TestBlockKernelMidBlockCancellation(t *testing.T) {
	e, _ := syntheticWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	provisional := 0
	res, err := e.QueryStream(ctx, "?x ?p ?y . ?y ?q ?z", func(ev AnswerEvent) error {
		if ev.Type == EventProvisional {
			provisional++
			cancel()
		}
		return nil
	}, WithMode(ModeExhaustive))
	if provisional == 0 {
		t.Fatal("no provisional event before cancellation")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("want a partial result after mid-block cancellation")
	}
	if res.Metrics.BlocksEmitted == 0 {
		t.Fatalf("BlocksEmitted = 0, want block execution before the cancel: %+v", res.Metrics)
	}
	canceledTraced := false
	for _, tr := range res.Trace {
		if tr.Status == "canceled" {
			canceledTraced = true
		}
	}
	if !canceledTraced {
		t.Fatalf("no trace entry with status canceled: %+v", res.Trace)
	}
}
