package trinit_test

import (
	"fmt"

	"trinit"
)

// The canonical session: load the paper's worked example and run user B's
// mis-directed query — relaxation inverts it.
func ExampleNewDemoEngine() {
	e := trinit.NewDemoEngine()
	res, _ := e.Query("AlbertEinstein hasAdvisor ?x")
	fmt.Println(res.Answers[0].Bindings["x"])
	// Output: AlfredKleiner
}

// Building an engine from scratch: curated facts, a text extension, a
// manual rule, and a query that needs all three.
func ExampleEngine_Query() {
	e := trinit.New(nil)
	e.AddKGFact("AlbertEinstein", "affiliation", "IAS")
	e.AddKGFact("PrincetonUniversity", "member", "IvyLeague")
	e.ExtendFromDocuments([]trinit.Document{
		{ID: "web-1", Text: "The IAS was housed in Princeton University."},
	})
	e.Freeze()
	e.AddRule("r3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8)

	res, _ := e.Query("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
	for _, a := range res.Answers {
		fmt.Printf("%s %.2f\n", a.Bindings["x"], a.Score)
	}
	// Output: PrincetonUniversity 0.80
}

// Natural-language questions are translated into structured queries and
// answered by the same relaxation machinery (§6).
func ExampleEngine_Ask() {
	e := trinit.NewDemoEngine()
	res, translated, _ := e.Ask("What did Einstein win a Nobel prize for?")
	fmt.Println(translated)
	fmt.Println(res.Answers[0].Bindings["a"])
	// Output:
	// AlbertEinstein 'won prize for' ?a
	// discovery of the photoelectric effect
}

// Token queries receive canonical-vocabulary suggestions (§5).
func ExampleEngine_Query_suggestions() {
	e := trinit.New(nil)
	e.AddKGFact("Alice", "worksFor", "Acme")
	e.AddKGFact("Bob", "worksFor", "Globex")
	e.AddTokenTriple("Alice", "works at", "Acme", 0.8, "", "")
	e.AddTokenTriple("Bob", "works at", "Globex", 0.8, "", "")
	e.Freeze()

	res, _ := e.Query("?x 'works at' ?y")
	for _, s := range res.Suggestions {
		fmt.Printf("replace '%s' with %s\n", s.Token, s.Resource)
	}
	// Output: replace 'works at' with worksFor
}

// Rules mined from the XKG bridge the curated and extracted vocabularies.
func ExampleEngine_MineRules() {
	e := trinit.New(nil)
	e.AddKGFact("Alice", "affiliation", "Acme")
	e.AddKGFact("Bob", "affiliation", "Globex")
	e.AddTokenTriple("Alice", "worked at", "Acme", 0.9, "", "")
	e.AddTokenTriple("Bob", "worked at", "Globex", 0.9, "", "")
	e.AddTokenTriple("Carol", "worked at", "Initech", 0.9, "", "")
	e.Freeze()

	specs, _ := e.MineRules(trinit.MiningConfig{MinSupport: 2, MinWeight: 0.5})
	for _, s := range specs {
		if s.ID == "mine:affiliation->'worked at'" {
			fmt.Printf("%s w=%.2f\n", s.ID, s.Weight)
		}
	}
	// Output: mine:affiliation->'worked at' w=0.67
}

// Every answer carries its full provenance: contributing KG and XKG
// triples (with source documents) and the relaxation rules invoked.
func ExampleEngine_Query_explanation() {
	e := trinit.NewDemoEngine()
	res, _ := e.Query("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
	ex := res.Answers[0].Explanation
	fmt.Println(len(ex.KGTriples), "KG triples,", len(ex.XKGTriples), "XKG triple(s)")
	fmt.Println("rule:", ex.Rules[0].ID)
	fmt.Println("source:", ex.XKGTriples[0].Doc)
	// Output:
	// 2 KG triples, 1 XKG triple(s)
	// rule: fig4-3
	// source: clueweb09-en0003-11-00542
}
