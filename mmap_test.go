package trinit

// Memory-mapped segment contract at the repo level, run with -race:
//
//   - TestMmapDifferential is the acceptance gate: the full 70-query
//     synthetic workload through an engine served zero-copy from a
//     mapped v2 segment must be byte-identical — answers, explanations,
//     suggestions, notices — to the eagerly decoded engine AND to the
//     never-persisted oracle, across kernel configurations and
//     parallelism settings;
//   - mapped engines survive concurrent queries (executor pools, shared
//     caches) without data races over the shared column views;
//   - a mapped engine reports its residency through MemoryStats.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// loadSnapshotEngine loads the shared synthetic snapshot with the given
// options, failing the test on error.
func loadSnapshotEngine(t *testing.T, path string, opts *Options) *Engine {
	t.Helper()
	e, err := LoadSnapshot(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// requireMapped skips the calling test on hosts where zero-copy serving
// is unavailable (non-unix, big-endian); everywhere else a non-mapped
// load of a v2 segment is a hard failure, not a skip.
func requireMapped(t *testing.T, e *Engine) {
	t.Helper()
	ms := e.MemoryStats()
	if !ms.Mapped {
		t.Skip("snapshot not mappable on this host")
	}
	if ms.MappedBytes == 0 {
		t.Fatal("mapped engine reports zero mapped bytes")
	}
}

func TestMmapDifferential(t *testing.T) {
	oracle, queries := syntheticWorkload(t)
	snap := synthSeedSnapshot(t)

	configs := []struct {
		name string
		tune func(o *Options)
	}{
		{"incremental", func(o *Options) {}},
		{"exhaustive", func(o *Options) { o.Exhaustive = true }},
		{"tuple-kernel", func(o *Options) { o.NoBlockJoin = true }},
		{"legacy-join", func(o *Options) { o.NoHashJoin = true }},
		{"no-token-index", func(o *Options) { o.NoTokenIndex = true }},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			mkOpts := func(noMap bool) *Options {
				o := &Options{NoMapSegments: noMap}
				cfg.tune(o)
				return o
			}
			eager := loadSnapshotEngine(t, snap, mkOpts(true))
			if eager.MemoryStats().Mapped {
				t.Fatal("NoMapSegments engine is mapped")
			}
			mapped := loadSnapshotEngine(t, snap, mkOpts(false))
			requireMapped(t, mapped)

			for _, wq := range queries {
				for _, p := range []int{1, 4} {
					var opts []QueryOption
					if p > 1 {
						opts = append(opts, WithParallelism(p))
					}
					want, err := eager.QueryContext(context.Background(), wq.Text, opts...)
					if err != nil {
						t.Fatalf("%s P=%d eager: %v", wq.ID, p, err)
					}
					got, err := mapped.QueryContext(context.Background(), wq.Text, opts...)
					if err != nil {
						t.Fatalf("%s P=%d mapped: %v", wq.ID, p, err)
					}
					if a, b := renderMmap(t, got), renderMmap(t, want); a != b {
						t.Fatalf("%s P=%d: mapped result differs from eager\n mapped: %s\n eager:  %s", wq.ID, p, a, b)
					}
					if cfg.name == "incremental" && p == 1 {
						// The never-persisted oracle closes the loop: disk
						// round-trip plus mapping loses nothing.
						ores, err := oracle.QueryContext(context.Background(), wq.Text)
						if err != nil {
							t.Fatalf("%s oracle: %v", wq.ID, err)
						}
						if a, b := renderMmap(t, got), renderMmap(t, ores); a != b {
							t.Fatalf("%s: mapped result differs from unpersisted oracle\n mapped: %s\n oracle: %s", wq.ID, a, b)
						}
					}
				}
			}
		})
	}
}

// renderMmap serialises the result parts that must be byte-identical
// across storage representations: answers (bindings, scores, eager
// explanations), suggestions and notices. Metrics vary with cache state
// and worker timing, trace with scheduling — both excluded.
func renderMmap(t *testing.T, res *Result) string {
	t.Helper()
	type stable struct {
		Answers     []Answer
		Suggestions []Suggestion
		Notices     []Notice
	}
	b, err := json.Marshal(stable{res.Answers, res.Suggestions, res.Notices})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMmapConcurrentQueries hammers one mapped engine from many
// goroutines — pooled executors, the shared match-list cache and the
// lazily built suggester all racing over the same column views. Run
// with -race; every result must match the single-threaded baseline.
func TestMmapConcurrentQueries(t *testing.T) {
	_, queries := syntheticWorkload(t)
	snap := synthSeedSnapshot(t)
	e := loadSnapshotEngine(t, snap, nil)
	requireMapped(t, e)

	baseline := make(map[string]string, len(queries))
	for _, wq := range queries[:20] {
		res, err := e.QueryContext(context.Background(), wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		baseline[wq.ID] = renderMmap(t, res)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, wq := range queries[:20] {
				res, err := e.QueryContext(context.Background(), wq.Text, WithParallelism(1+(i+w)%3))
				if err != nil {
					errs <- err
					return
				}
				if renderMmap(t, res) != baseline[wq.ID] {
					errs <- fmt.Errorf("%s: concurrent result differs from baseline", wq.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
