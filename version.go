package trinit

// Epoch-pinned MVCC store versions.
//
// Every published store state — the snapshot loaded at Open, the overlay
// after each live-ingest batch, the merged store after a compaction — is
// wrapped in an immutable storeVersion bundling the store with everything
// derived from it: the match-list cache, the executor pool, and the
// lazily built suggester and question translator. Queries pin the current
// version at admission and read it lock-free for their whole lifetime;
// ingest and compaction publish a successor under the engine lock and
// retire the old version without ever blocking the read path.
//
// Retirement matters only for memory-mapped bases: heap stores are
// garbage-collected whenever the last reference drops, but a mapping must
// be munmapped explicitly — and never while a pinned query (or a Result
// whose lazy explanations still point into it) can dereference the
// columns. A retired version is therefore released only when its pin
// count drains to zero, and the mapping itself is reference-counted
// across the versions that share it (an ingest publish reuses the base's
// mapping; only a compaction replaces it).

import (
	"sync"
	"sync/atomic"

	"trinit/internal/qa"
	"trinit/internal/serial"
	"trinit/internal/store"
	"trinit/internal/suggest"
	"trinit/internal/topk"
)

// mappedRef reference-counts one memory-mapped segment across the store
// versions serving from it. The count reaching zero unmaps the segment.
type mappedRef struct {
	m    *serial.MappedSnapshot
	refs atomic.Int64
}

func newMappedRef(m *serial.MappedSnapshot) *mappedRef {
	if m == nil {
		return nil
	}
	return &mappedRef{m: m}
}

// acquire takes one reference; nil-safe for heap-backed versions.
func (r *mappedRef) acquire() *mappedRef {
	if r != nil {
		r.refs.Add(1)
	}
	return r
}

// drop releases one reference, unmapping the segment on the last.
func (r *mappedRef) drop() {
	if r != nil && r.refs.Add(-1) == 0 {
		r.m.Close()
	}
}

func (r *mappedRef) bytes() int {
	if r == nil {
		return 0
	}
	return r.m.MappedBytes()
}

// storeVersion is one immutable published store state.
type storeVersion struct {
	engine *Engine
	// st is the read view queries run against: the base itself, or the
	// base with a delta overlay spliced in.
	st *store.Store
	// base is the overlay-free frozen base; delta is nil without live
	// ingest.
	base   *store.Store
	delta  *store.Delta
	epoch  uint64
	mapped *mappedRef

	// cache and execs are this version's match-list cache and executor
	// pool: match lists are relative to one store state, so a publish
	// starts both fresh.
	cache *topk.Cache
	execs *sync.Pool

	// The suggester and question translator scan the store to build, so
	// each is constructed on first use rather than at publish — the
	// price of keeping segment open time and ingest latency independent
	// of the triple count.
	sugOnce sync.Once
	sug     *suggest.Suggester
	trOnce  sync.Once
	tr      *qa.Translator

	pins    atomic.Int64
	retired atomic.Bool
	release sync.Once
}

// newStoreVersion assembles a version over st (base plus optional delta),
// taking a reference on the mapping that backs it, if any.
func newStoreVersion(e *Engine, st, base *store.Store, delta *store.Delta, mapped *mappedRef, epoch uint64) *storeVersion {
	v := &storeVersion{
		engine: e,
		st:     st,
		base:   base,
		delta:  delta,
		epoch:  epoch,
		mapped: mapped.acquire(),
		cache:  topk.NewCache(e.opts.MatchCacheSize),
	}
	opts := e.topkOptions()
	cache := v.cache
	v.execs = &sync.Pool{New: func() any { return topk.NewExecutor(st, cache, opts) }}
	return v
}

// suggester returns the version's query suggester, building it on first
// use.
func (v *storeVersion) suggester() *suggest.Suggester {
	v.sugOnce.Do(func() { v.sug = suggest.New(v.st) })
	return v.sug
}

// translator returns the version's question translator, building it on
// first use.
func (v *storeVersion) translator() *qa.Translator {
	v.trOnce.Do(func() { v.tr = qa.NewTranslator(v.st) })
	return v.tr
}

// pin takes a read lease on the version. Callers pin under e.mu (read
// side), so a pin can never race a publish: a version observed as current
// is pinned before it can be retired.
func (v *storeVersion) pin() { v.pins.Add(1) }

// unpin releases a read lease, freeing the version's resources when it
// was retired and this was the last reader.
func (v *storeVersion) unpin() {
	if v.pins.Add(-1) == 0 && v.retired.Load() {
		v.releaseNow()
	}
}

// retire marks the version superseded. Called under e.mu (write side) by
// publishLocked, mutually exclusive with pinning.
func (v *storeVersion) retire() {
	v.engine.retiredLive.Add(1)
	v.retired.Store(true)
	if v.pins.Load() == 0 {
		v.releaseNow()
	}
}

// releaseNow frees the version's hold on shared resources exactly once.
// Both the last unpin and a pin-free retire can race into it; the Once
// arbitrates.
func (v *storeVersion) releaseNow() {
	v.release.Do(func() {
		v.engine.retiredLive.Add(-1)
		v.mapped.drop()
	})
}

// releaseVersionPin is the runtime cleanup hook for Results that hold a
// version pin for lazy explanations (it must not capture the Result).
func releaseVersionPin(v *storeVersion) { v.unpin() }

// currentVersion pins and returns the engine's published store version,
// initialising one lazily for engines assembled without Freeze
// (package-internal tests).
func (e *Engine) currentVersion() *storeVersion {
	e.mu.RLock()
	v := e.ver
	if v != nil {
		v.pin()
	}
	e.mu.RUnlock()
	if v != nil {
		return v
	}
	e.mu.Lock()
	if e.ver == nil {
		e.ver = newStoreVersion(e, e.st, e.st, nil, nil, 0)
	}
	v = e.ver
	v.pin()
	e.mu.Unlock()
	return v
}

// publishLocked installs v as the engine's current version and retires
// the predecessor. Callers hold e.mu.
func (e *Engine) publishLocked(v *storeVersion) {
	old := e.ver
	e.ver = v
	e.st = v.st
	if old != nil {
		old.retire()
	}
}

// MemoryStats reports the engine's storage residency: whether the base
// segment is memory-mapped (and how large the mapping is), the live
// delta overlay's size, and the compaction/retirement counters.
type MemoryStats struct {
	// Epoch is the current version's snapshot epoch (0 for in-memory
	// engines).
	Epoch uint64
	// Mapped reports that the base store serves from a memory-mapped
	// segment; MappedBytes is the mapping size.
	Mapped      bool
	MappedBytes int
	// DeltaTriples and DeltaOverrides size the live ingest overlay (new
	// facts and higher-confidence replacements of base facts).
	DeltaTriples   int
	DeltaOverrides int
	// Compactions counts delta-into-base folds since construction.
	Compactions uint64
	// PinnedVersions counts retired store versions still held alive by
	// in-flight queries or unreleased Results.
	PinnedVersions int64
	// IngestedFacts counts facts applied by IngestFacts since
	// construction (rejected lower-confidence duplicates excluded).
	IngestedFacts uint64
}

// MemoryStats returns a snapshot of the engine's storage residency.
func (e *Engine) MemoryStats() MemoryStats {
	v := e.currentVersion()
	defer v.unpin()
	return MemoryStats{
		Epoch:          v.epoch,
		Mapped:         v.base.Mapped(),
		MappedBytes:    v.mapped.bytes(),
		DeltaTriples:   v.delta.Rows(),
		DeltaOverrides: v.delta.Overrides(),
		Compactions:    e.compactions.Load(),
		PinnedVersions: e.retiredLive.Load(),
		IngestedFacts:  e.ingestedFacts.Load(),
	}
}
