package trinit

// Engine-level serving robustness: admission control sheds with
// ErrOverloaded when saturated, readiness tracks saturation, and
// evaluation panics are recovered into ErrInternal at both the serial
// (engine) and parallel (worker) boundaries, leaving the engine
// serviceable. Run with -race.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"trinit/internal/faultinject"
)

// TestAdmissionShedsWhenSaturated: with capacity 1 and a queue of 1, a
// third concurrent query — one running, one queued — is shed
// immediately with ErrOverloaded; readiness flips with saturation.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	e := NewDemoEngine()
	e.SetAdmissionControl(1, 1)
	if !e.Ready() {
		t.Fatal("idle engine not ready")
	}

	// Hold the first query in flight: the injected hook parks the
	// evaluation until released. Once hold closes, later firings of the
	// same hook pass straight through.
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := faultinject.NewScript().CallOn(faultinject.SiteRewriteEval, "", 0, func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	})
	defer s.Install()()

	first := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(context.Background(), "AlbertEinstein hasAdvisor ?x")
		first <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first query never started evaluating")
	}

	// The second query fills the single queue slot.
	second := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(context.Background(), "?x bornIn Germany")
		second <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.ServingStats().Admission.Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if e.Ready() {
		t.Fatal("Ready() = true with a full admission queue")
	}

	before := e.ServingStats()
	_, err := e.QueryContext(context.Background(), "AlbertEinstein hasAdvisor ?x")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated query err = %v, want ErrOverloaded", err)
	}
	if got := e.ServingStats().QueriesShed; got != before.QueriesShed+1 {
		t.Fatalf("QueriesShed = %d, want %d", got, before.QueriesShed+1)
	}

	close(hold)
	if err := <-first; err != nil {
		t.Fatalf("held query: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	if !e.Ready() {
		t.Fatal("Ready() = false after the held queries released their weight")
	}
	if s := e.ServingStats().Admission; s.InUse != 0 || s.Queued != 0 {
		t.Fatalf("admission not drained: %+v", s)
	}
	if _, err := e.QueryContext(context.Background(), "AlbertEinstein hasAdvisor ?x"); err != nil {
		t.Fatalf("post-saturation query: %v", err)
	}
}

// TestAdmissionQueuedGrant: a query that queues behind a saturated
// controller is granted when the weight frees, not shed.
func TestAdmissionQueuedGrant(t *testing.T) {
	e := NewDemoEngine()
	e.SetAdmissionControl(1, 4)

	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := faultinject.NewScript().CallOn(faultinject.SiteRewriteEval, "", 1, func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	})
	defer s.Install()()

	first := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(context.Background(), "AlbertEinstein hasAdvisor ?x")
		first <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first query never started evaluating")
	}
	faultinject.Clear()

	second := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(context.Background(), "?x bornIn Germany")
		second <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.ServingStats().Admission.Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	if err := <-first; err != nil {
		t.Fatalf("first query: %v", err)
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("queued query: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query never granted")
	}
}

// TestPanicRecoveredSerial: a panic on the serial path is caught at the
// engine boundary — typed ErrInternal, partial result with the stack in
// the trace, counter bumped, engine serviceable afterwards.
func TestPanicRecoveredSerial(t *testing.T) {
	e := NewDemoEngine()
	const text = "AlbertEinstein hasAdvisor ?x"
	if _, err := e.Query(text); err != nil { // warm cache for the rerun comparison
		t.Fatal(err)
	}
	oracle, err := e.QueryContext(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}

	before := e.ServingStats().PanicsRecovered
	s := faultinject.NewScript().PanicOn(faultinject.SiteRewriteEval, "", 1, "injected serial crash")
	clear := s.Install()
	res, err := e.QueryContext(context.Background(), text)
	clear()

	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "injected serial crash") {
		t.Fatalf("err %q does not carry the panic value", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("want a non-nil partial result after a recovered panic")
	}
	panicTraced := false
	for _, tr := range res.Trace {
		if tr.Status == "panic" && strings.Contains(tr.Detail, "injected serial crash") {
			panicTraced = true
		}
	}
	if !panicTraced {
		t.Fatalf("no panic trace entry with the stack: %+v", res.Trace)
	}
	if got := e.ServingStats().PanicsRecovered; got != before+1 {
		t.Fatalf("PanicsRecovered = %d, want %d", got, before+1)
	}

	after, err := e.QueryContext(context.Background(), text)
	if err != nil {
		t.Fatalf("post-panic query: %v", err)
	}
	if a, b := renderResult(t, oracle), renderResult(t, after); a != b {
		t.Fatalf("post-panic result differs from pre-panic oracle\n before: %s\n after:  %s", a, b)
	}
}

// TestPanicRecoveredParallel: a worker panic under WithParallelism is
// isolated at the worker boundary, siblings drain, and the typed error
// surfaces identically.
func TestPanicRecoveredParallel(t *testing.T) {
	e, _ := syntheticWorkload(t)
	const text = "?x ?p ?y . ?y ?q ?z"
	baseline := runtime.NumGoroutine()

	before := e.ServingStats().PanicsRecovered
	s := faultinject.NewScript().PanicOn(faultinject.SiteRewriteEval, "", 1, "injected worker crash")
	clear := s.Install()
	res, err := e.QueryContext(context.Background(), text, WithParallelism(4), WithMode(ModeExhaustive))
	clear()

	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("want a non-nil partial result after a recovered worker panic")
	}
	if got := e.ServingStats().PanicsRecovered; got != before+1 {
		t.Fatalf("PanicsRecovered = %d, want %d", got, before+1)
	}
	panicTraced := false
	for _, tr := range res.Trace {
		if tr.Status == "panic" {
			panicTraced = true
		}
	}
	if !panicTraced {
		t.Fatal("no trace entry with status panic")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("%d goroutines after recovered worker panic, baseline %d", n, baseline)
	}

	if _, err := e.QueryContext(context.Background(), text, WithParallelism(4)); err != nil {
		t.Fatalf("post-panic query: %v", err)
	}
}
