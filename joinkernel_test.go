package trinit

// Differential tests for the hash-indexed join kernel: every kernel
// configuration — legacy full scans, hash probing, hash probing plus
// semi-join reduction, with and without planning — must produce answers
// identical to the Exhaustive baseline across the full example workloads,
// and concurrent executors sharing the cached hash indexes must agree
// with a serial run (exercised under -race in CI).

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/topk"
)

// renderAnswers formats answers with sorted bindings; scores are printed
// exactly (%.17g round-trips float64) so byte comparison implies exact
// score equality.
func renderAnswers(st *store.Store, answers []topk.Answer) string {
	var b strings.Builder
	for _, a := range answers {
		vars := make([]string, 0, len(a.Bindings))
		for v := range a.Bindings {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			fmt.Fprintf(&b, "%s=%s ", v, st.Dict().Term(a.Bindings[v]).Text)
		}
		fmt.Fprintf(&b, "| %.17g\n", a.Score)
	}
	return b.String()
}

// TestKernelDifferentialOnFullWorkload runs the complete synthetic
// workload through every kernel configuration and checks the answers
// against the Exhaustive oracle.
func TestKernelDifferentialOnFullWorkload(t *testing.T) {
	inst := fullInstance()
	workload := world().Workload(70)
	// Scores are compared with a 1e-12 tolerance: configurations with
	// different join orders multiply the same per-pattern probabilities
	// in a different order, which can differ in the last ulp. Bindings
	// must agree exactly. (Byte-identical equality between incremental
	// and exhaustive under the same kernel is pinned separately in
	// TestIncrementalByteIdenticalToExhaustive.)
	configs := []struct {
		name string
		opts topk.Options
	}{
		{"exhaustive+hash+semijoin", topk.Options{K: 10, Mode: topk.Exhaustive}},
		{"incremental+hash+semijoin", topk.Options{K: 10, Mode: topk.Incremental}},
		{"incremental+hash", topk.Options{K: 10, Mode: topk.Incremental, NoSemiJoin: true}},
		{"incremental+tuple", topk.Options{K: 10, Mode: topk.Incremental, NoBlockJoin: true}},
		{"exhaustive+tuple", topk.Options{K: 10, Mode: topk.Exhaustive, NoBlockJoin: true}},
		{"incremental+legacy", topk.Options{K: 10, Mode: topk.Incremental, NoHashJoin: true}},
		{"incremental+noplan", topk.Options{K: 10, Mode: topk.Incremental, NoPlan: true}},
		{"incremental+notokenindex", topk.Options{K: 10, Mode: topk.Incremental, NoTokenIndex: true}},
		{"exhaustive+notokenindex", topk.Options{K: 10, Mode: topk.Exhaustive, NoTokenIndex: true}},
	}
	for _, wq := range workload {
		q, err := query.Parse(wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		oracle, _ := topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Exhaustive, NoHashJoin: true}).Evaluate(q, rewrites)
		for _, cfg := range configs {
			got, _ := topk.New(inst.Store, cfg.opts).Evaluate(q, rewrites)
			if len(got) != len(oracle) {
				t.Fatalf("%s [%s]: %d answers, oracle %d", wq.ID, cfg.name, len(got), len(oracle))
			}
			for i := range got {
				if math.Abs(got[i].Score-oracle[i].Score) > 1e-12 {
					t.Fatalf("%s [%s]: answer %d score %v, oracle %v", wq.ID, cfg.name, i, got[i].Score, oracle[i].Score)
				}
				if len(got[i].Bindings) != len(oracle[i].Bindings) {
					t.Fatalf("%s [%s]: answer %d has %d bindings, oracle %d", wq.ID, cfg.name, i, len(got[i].Bindings), len(oracle[i].Bindings))
				}
				for v, id := range got[i].Bindings {
					if oracle[i].Bindings[v] != id {
						t.Fatalf("%s [%s]: answer %d binding %s differs", wq.ID, cfg.name, i, v)
					}
				}
			}
		}
	}
}

// TestIncrementalByteIdenticalToExhaustive pins the acceptance criterion
// directly: with the default kernel, incremental answers are byte-for-byte
// the exhaustive answers (same bindings, same exact scores, same order)
// on every workload query.
func TestIncrementalByteIdenticalToExhaustive(t *testing.T) {
	inst := fullInstance()
	for _, wq := range world().Workload(70) {
		q, err := query.Parse(wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		inc, _ := topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Incremental}).Evaluate(q, rewrites)
		exh, _ := topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Exhaustive}).Evaluate(q, rewrites)
		if got, want := renderAnswers(inst.Store, inc), renderAnswers(inst.Store, exh); got != want {
			t.Fatalf("%s: incremental answers differ from exhaustive:\n--- incremental\n%s--- exhaustive\n%s", wq.ID, got, want)
		}
	}
}

// TestConcurrentExecutorsShareHashIndexes hammers one shared match-list
// cache (and thus one set of hash indexes and buckets) from many
// executors at once, on join-heavy queries, and checks every result
// against a serial baseline. Run with -race to catch unsynchronised
// access to the shared patternList structures.
func TestConcurrentExecutorsShareHashIndexes(t *testing.T) {
	inst := fullInstance()
	queries := []string{
		"?x affiliation ?u . ?u locatedIn Northford",
		"SELECT ?x WHERE { ?x ?p ?y . ?y locatedIn Northford . ?x affiliation ?u }",
		"?x bornIn ?y . ?y locatedIn ?z",
		"?x hasAdvisor ?a . ?a affiliation ?u",
	}
	type prepared struct {
		q        *query.Query
		rewrites []relax.Rewrite
		want     string
	}
	prep := make([]prepared, len(queries))
	cache := topk.NewCache(0)
	for i, qs := range queries {
		q := query.MustParse(qs)
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		ans, _ := topk.NewExecutor(inst.Store, topk.NewCache(0), topk.Options{K: 10}).Evaluate(q, rewrites)
		prep[i] = prepared{q, rewrites, renderAnswers(inst.Store, ans)}
	}
	const goroutines = 8
	const iters = 6
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ex := topk.NewExecutor(inst.Store, cache, topk.Options{K: 10})
			for i := 0; i < iters; i++ {
				p := prep[(g+i)%len(prep)]
				ans, _ := ex.Evaluate(p.q, p.rewrites)
				if got := renderAnswers(inst.Store, ans); got != p.want {
					errs <- fmt.Errorf("goroutine %d iter %d (%s): answers diverged from serial baseline", g, i, p.q)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("shared cache saw no index reuse: %+v", s)
	}
}
