package trinit

// Live ingest into a frozen engine.
//
// The pre-Freeze mutation APIs build the base store; IngestFacts extends
// a frozen engine without unfreezing it. Each batch is interned into
// clones of the published dictionary and provenance table, folded into an
// immutable delta segment over the (possibly memory-mapped) base, logged
// to the write-ahead log on durable engines, and published as a new store
// version. In-flight queries keep the version they pinned; new queries
// see the batch atomically. Semantics match the pre-Freeze Add path
// exactly: a fact whose (S, P, O) key exists replaces the stored copy
// only at strictly higher confidence, so an engine that ingests a batch
// live is query-for-query identical to one that ingested it before
// Freeze.
//
// Compact folds the delta back into a single base — in memory for
// ephemeral engines, through Checkpoint (next-epoch v2 segment, WAL
// rotation, remap) for durable ones. With Options.CompactAfter set, a
// background compaction triggers automatically once the delta outgrows
// the threshold.

import (
	"fmt"

	"trinit/internal/rdf"
	"trinit/internal/serial"
	"trinit/internal/store"
)

// Fact is one triple for live ingest into a frozen engine (IngestFacts).
// The zero-value interpretation is a curated KG fact between resources at
// confidence 1, mirroring AddKGFact.
type Fact struct {
	// Subject, Predicate and Object are term surface texts.
	Subject, Predicate, Object string
	// XKG marks an extracted token fact, mirroring AddTokenTriple: the
	// predicate is a token phrase, subject and object resolve to known
	// resources when the dictionary holds them and token phrases
	// otherwise, and Confidence applies.
	XKG bool
	// LiteralObject marks the object a literal value (KG facts only),
	// mirroring AddKGLiteral.
	LiteralObject bool
	// Confidence is the extraction confidence of an XKG fact, in (0, 1].
	// Ignored for KG facts (always 1).
	Confidence float64
	// Doc and Sentence attach provenance to an XKG fact.
	Doc, Sentence string
}

// internFact maps one fact onto an interned triple, mirroring the
// pre-Freeze AddKGFact/AddKGLiteral/AddTokenTriple term handling.
func internFact(dict *rdf.Dict, prov *rdf.ProvTable, f Fact) (rdf.Triple, error) {
	if !f.XKG {
		o := rdf.Resource(f.Object)
		if f.LiteralObject {
			o = rdf.Literal(f.Object)
		}
		return rdf.Triple{
			S:      dict.Intern(rdf.Resource(f.Subject)),
			P:      dict.Intern(rdf.Resource(f.Predicate)),
			O:      dict.Intern(o),
			Source: rdf.SourceKG,
			Conf:   1,
			Prov:   rdf.NoProv,
		}, nil
	}
	if f.Confidence <= 0 || f.Confidence > 1 {
		return rdf.Triple{}, fmt.Errorf("confidence %v outside (0, 1]", f.Confidence)
	}
	pv := rdf.NoProv
	if f.Doc != "" || f.Sentence != "" {
		pv = prov.Add(rdf.Prov{Doc: f.Doc, Sentence: f.Sentence})
	}
	s := rdf.Token(f.Subject)
	if _, ok := dict.Lookup(rdf.Resource(f.Subject)); ok {
		s = rdf.Resource(f.Subject)
	}
	o := rdf.Token(f.Object)
	if _, ok := dict.Lookup(rdf.Resource(f.Object)); ok {
		o = rdf.Resource(f.Object)
	}
	return rdf.Triple{
		S:      dict.Intern(s),
		P:      dict.Intern(rdf.Token(f.Predicate)),
		O:      dict.Intern(o),
		Source: rdf.SourceXKG,
		Conf:   f.Confidence,
		Prov:   pv,
	}, nil
}

// IngestFacts applies a batch of facts to a frozen engine and returns how
// many changed state (new keys plus accepted higher-confidence
// replacements; lower-confidence duplicates are dropped, as in the
// pre-Freeze Add path). On durable engines the batch is written ahead to
// the log before publication. Queries never block on ingest: in-flight
// ones keep the store version they started with, later ones see the whole
// batch. Sharded engines (Options.Shards > 1) do not support live ingest.
func (e *Engine) IngestFacts(facts []Fact) (int, error) {
	if len(facts) == 0 {
		return 0, nil
	}
	d, unlock := e.durLocked()
	defer unlock()
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.RLock()
	frozen, group := e.frozen, e.group
	e.mu.RUnlock()
	if !frozen {
		return 0, fmt.Errorf("%w: IngestFacts requires a frozen engine (use AddKGFact/AddTokenTriple before Freeze)", ErrNotFrozen)
	}
	if group != nil {
		return 0, fmt.Errorf("trinit: live ingest is not supported on sharded engines (Reshard(1) first)")
	}
	cur := e.currentVersion()
	defer cur.unpin()

	// Clone-on-write: readers of the published version share its
	// dictionary and provenance table, so the batch interns into clones
	// that become visible only with the publish.
	dict := cur.st.Dict().Clone()
	prov := cur.st.Prov().Clone()
	triples := make([]rdf.Triple, 0, len(facts))
	for i, f := range facts {
		t, err := internFact(dict, prov, f)
		if err != nil {
			return 0, fmt.Errorf("trinit: fact %d: %w", i, err)
		}
		triples = append(triples, t)
	}
	delta, applied, err := store.BuildDelta(cur.base, dict, cur.delta, triples)
	if err != nil {
		return 0, fmt.Errorf("trinit: %w", err)
	}
	if len(applied) == 0 {
		return 0, nil
	}
	if d != nil {
		// Write-ahead: the batch is published only once its records are
		// durable. Terms go by value — recovery replays them into a
		// dictionary that may have grown differently.
		recs := make([]serial.WALRecord, len(applied))
		for i, t := range applied {
			pv := prov.Get(t.Prov)
			recs[i] = serial.WALRecord{
				Op:       serial.WALTriple,
				S:        dict.Term(t.S),
				P:        dict.Term(t.P),
				O:        dict.Term(t.O),
				Source:   t.Source,
				Conf:     t.Conf,
				Doc:      pv.Doc,
				Sentence: pv.Sentence,
			}
		}
		if err := d.append(recs...); err != nil {
			return 0, err
		}
	}
	overlay := cur.base.WithDelta(delta, dict, prov)
	e.mu.Lock()
	e.publishLocked(newStoreVersion(e, overlay, cur.base, delta, cur.mapped, cur.epoch))
	e.mu.Unlock()
	e.ingestedFacts.Add(uint64(len(applied)))

	if n := e.opts.CompactAfter; n > 0 && delta.Rows() >= n && e.compacting.CompareAndSwap(false, true) {
		go func() {
			defer e.compacting.Store(false)
			// Background fold; a failure surfaces through the durability
			// layer's sticky error on the next durable mutation.
			e.Compact() //nolint:errcheck
		}()
	}
	return len(applied), nil
}

// materializeStore folds a delta overlay into a single frozen heap store
// with identical triple IDs, dictionary and provenance table — the store
// an engine that ingested the same facts before Freeze would hold.
func materializeStore(src *store.Store) *store.Store {
	m := store.New(src.Dict(), src.Prov())
	for i, n := 0, src.Len(); i < n; i++ {
		m.Add(src.Triple(store.ID(i)))
	}
	m.Freeze()
	return m
}

// Compact folds the live-ingest delta back into a single base store and
// publishes it. On durable engines it delegates to Checkpoint, which
// writes the merged image as the next-epoch segment, rotates the log and
// remaps the fresh segment. A no-op when there is nothing to fold.
func (e *Engine) Compact() error {
	if e.dur.Load() != nil {
		return e.Checkpoint()
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.compactInMemory()
}

// compactInMemory publishes a merged heap store over the current overlay.
// Callers hold e.ingestMu.
func (e *Engine) compactInMemory() error {
	e.mu.RLock()
	frozen := e.frozen
	e.mu.RUnlock()
	if !frozen {
		return fmt.Errorf("%w: Compact requires a frozen engine", ErrNotFrozen)
	}
	cur := e.currentVersion()
	defer cur.unpin()
	if cur.delta.Rows()+cur.delta.Overrides() == 0 {
		return nil
	}
	merged := materializeStore(cur.st)
	e.mu.Lock()
	e.publishLocked(newStoreVersion(e, merged, merged, nil, nil, cur.epoch))
	e.mu.Unlock()
	e.compactions.Add(1)
	return nil
}
