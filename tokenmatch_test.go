package trinit

// Differential and fuzz tests for token-resolved match building: for any
// pattern — including all-stopword token phrases, repeated variables and
// unknown tokens — the inverted-index resolution path and the legacy
// wildcard-scan path must produce byte-identical match lists, and queries
// must produce byte-identical answers across every kernel configuration
// with and without token resolution. A -race test hammers the shared
// token-resolution cache from concurrent executors.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/score"
	"trinit/internal/store"
	"trinit/internal/topk"
)

// renderMatches formats a match list for byte comparison; %.17g
// round-trips float64, so equal strings imply bit-identical scores.
func renderMatches(ms []score.Match) string {
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "t%d raw=%.17g prob=%.17g", m.Triple, m.Raw, m.Prob)
		for _, bd := range m.Bindings {
			fmt.Fprintf(&b, " %s=%d", bd.Var, bd.Term)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// patternVocab samples pattern slots from the store's real vocabulary plus
// adversarial token phrases.
type patternVocab struct {
	resources []string
	tokens    []string
	rng       *rand.Rand
}

func newPatternVocab(st *store.Store, seed int64) *patternVocab {
	v := &patternVocab{rng: rand.New(rand.NewSource(seed))}
	st.Dict().All(func(_ rdf.TermID, t rdf.Term) bool {
		switch t.Kind {
		case rdf.KindResource:
			if len(v.resources) < 120 {
				v.resources = append(v.resources, t.Text)
			}
		case rdf.KindToken:
			if len(v.tokens) < 120 {
				v.tokens = append(v.tokens, t.Text)
			}
		}
		return len(v.resources) < 120 || len(v.tokens) < 120
	})
	return v
}

// adversarialTokens are token phrases exercising the resolution edge
// cases: all-stopword phrases (kept alive by the ContentTokens fallback),
// phrases with no indexed word, and stopword-padded real words.
var adversarialTokens = []string{
	"of", "the of", "in the a", // all stopwords
	"zzyzx qwfp", "completely absent phrase qqq", // unknown words
	"the worked at", "was born", "university", "at",
}

func (v *patternVocab) slot() query.Slot {
	vars := []string{"x", "y", "z"}
	switch v.rng.Intn(10) {
	case 0, 1, 2:
		return query.Variable(vars[v.rng.Intn(len(vars))])
	case 3, 4:
		return query.Bound(rdf.Resource(v.resources[v.rng.Intn(len(v.resources))]))
	case 5:
		return query.Bound(rdf.Resource("NoSuchResourceZZZ"))
	case 6, 7:
		tok := v.tokens[v.rng.Intn(len(v.tokens))]
		if v.rng.Intn(2) == 0 {
			tok = "the " + tok // stopword perturbation, same content set
		}
		return query.Bound(rdf.Token(tok))
	default:
		return query.Bound(rdf.Token(adversarialTokens[v.rng.Intn(len(adversarialTokens))]))
	}
}

func (v *patternVocab) pattern() query.Pattern {
	return query.Pattern{S: v.slot(), P: v.slot(), O: v.slot()}
}

// TestMatcherDifferentialFuzz: random patterns must produce byte-identical
// match lists between token-resolved and scan matching, and Selectivity
// must equal the match-list length on both paths.
func TestMatcherDifferentialFuzz(t *testing.T) {
	st := fullInstance().Store
	v := newPatternVocab(st, 17)
	resolved := score.NewMatcher(st)
	scan := score.NewMatcher(st)
	scan.NoTokenIndex = true
	for round := 0; round < 400; round++ {
		p := v.pattern()
		rm, rs := resolved.MatchPatternCounted(p)
		sm, ss := scan.MatchPatternCounted(p)
		if got, want := renderMatches(rm), renderMatches(sm); got != want {
			t.Fatalf("round %d: pattern %s: match lists differ\n--- token-resolved\n%s--- scan\n%s",
				round, p, got, want)
		}
		if sel := resolved.Selectivity(p); sel != len(rm) {
			t.Fatalf("round %d: pattern %s: Selectivity = %d, matches = %d", round, p, sel, len(rm))
		}
		if ss.TokenResolutions != 0 {
			t.Fatalf("round %d: scan matcher resolved tokens: %+v", round, ss)
		}
		// The resolved path must never touch more posting entries than
		// the scan it replaces (the fallback guard's invariant).
		if rs.IndexScanned > ss.IndexScanned {
			t.Fatalf("round %d: pattern %s: resolved path scanned %d > scan path %d",
				round, p, rs.IndexScanned, ss.IndexScanned)
		}
	}
}

// TestMatcherStopwordAndUnknownTokens pins the resolution edge cases
// explicitly against the scan oracle.
func TestMatcherStopwordAndUnknownTokens(t *testing.T) {
	st := fullInstance().Store
	resolved := score.NewMatcher(st)
	scan := score.NewMatcher(st)
	scan.NoTokenIndex = true
	for _, tok := range adversarialTokens {
		for _, p := range []query.Pattern{
			{S: query.Variable("x"), P: query.Bound(rdf.Token(tok)), O: query.Variable("y")},
			{S: query.Variable("x"), P: query.Bound(rdf.Token(tok)), O: query.Variable("x")},
			{S: query.Bound(rdf.Token(tok)), P: query.Variable("p"), O: query.Bound(rdf.Token(tok))},
		} {
			rm, _ := resolved.MatchPatternCounted(p)
			sm, _ := scan.MatchPatternCounted(p)
			if got, want := renderMatches(rm), renderMatches(sm); got != want {
				t.Fatalf("token %q: pattern %s: lists differ\n--- token-resolved\n%s--- scan\n%s",
					tok, p, got, want)
			}
		}
	}
}

// TestTokenKernelDifferentialFuzz: random multi-pattern queries must
// produce byte-identical answers across every kernel configuration, with
// and without token resolution, in both processing modes.
func TestTokenKernelDifferentialFuzz(t *testing.T) {
	inst := fullInstance()
	v := newPatternVocab(inst.Store, 23)
	kernels := []struct {
		name string
		opts topk.Options
	}{
		{"default", topk.Options{K: 10}},
		{"notokenindex", topk.Options{K: 10, NoTokenIndex: true}},
		{"nohashjoin", topk.Options{K: 10, NoHashJoin: true}},
		{"nohashjoin+notokenindex", topk.Options{K: 10, NoHashJoin: true, NoTokenIndex: true}},
		{"nosemijoin+notokenindex", topk.Options{K: 10, NoSemiJoin: true, NoTokenIndex: true}},
		{"noplan+notokenindex", topk.Options{K: 10, NoPlan: true, NoTokenIndex: true}},
		{"exhaustive", topk.Options{K: 10, Mode: topk.Exhaustive}},
		{"exhaustive+notokenindex", topk.Options{K: 10, Mode: topk.Exhaustive, NoTokenIndex: true}},
	}
	for round := 0; round < 40; round++ {
		q := &query.Query{Patterns: []query.Pattern{v.pattern()}}
		// Join in one or two more patterns sharing variables with the
		// first by construction of the tiny variable pool.
		for extra := v.rng.Intn(3); extra > 0; extra-- {
			q.Patterns = append(q.Patterns, v.pattern())
		}
		if len(q.ProjectedVars()) == 0 {
			continue // no variables, nothing to differentiate
		}
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		oracle, _ := topk.New(inst.Store, topk.Options{K: 10, Mode: topk.Exhaustive, NoHashJoin: true, NoTokenIndex: true}).Evaluate(q, rewrites)
		want := renderAnswers(inst.Store, oracle)
		for _, cfg := range kernels {
			got, _ := topk.New(inst.Store, cfg.opts).Evaluate(q, rewrites)
			if g := renderAnswers(inst.Store, got); g != want {
				t.Fatalf("round %d [%s]: query %s: answers differ\n--- got\n%s--- oracle\n%s",
					round, cfg.name, q, g, want)
			}
		}
	}
}

// TestConcurrentTokenResolutionSharedCache runs token-heavy queries from
// many executors over one shared cache — one shared token-resolution map,
// one set of match lists — and checks every result against a serial
// baseline. Run with -race to catch unsynchronised access to the
// resolution cache and the zero-copy store ranges.
func TestConcurrentTokenResolutionSharedCache(t *testing.T) {
	inst := fullInstance()
	queries := []string{
		"?x 'worked at' ?u",
		"?x 'was born in' ?c",
		"?x 'won prize for' ?f",
		"SELECT ?x WHERE { ?x 'worked at' ?u . ?u locatedIn ?c }",
		"?x 'lectured at' ?u . ?u member ?l",
	}
	type prepared struct {
		q        *query.Query
		rewrites []relax.Rewrite
		want     string
	}
	prep := make([]prepared, len(queries))
	for i, qs := range queries {
		q := query.MustParse(qs)
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(inst.Rules).Expand(q)
		ans, _ := topk.NewExecutor(inst.Store, topk.NewCache(0), topk.Options{K: 10}).Evaluate(q, rewrites)
		prep[i] = prepared{q, rewrites, renderAnswers(inst.Store, ans)}
	}
	cache := topk.NewCache(0)
	const goroutines = 8
	const iters = 5
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ex := topk.NewExecutor(inst.Store, cache, topk.Options{K: 10})
			for i := 0; i < iters; i++ {
				p := prep[(g+i)%len(prep)]
				ans, _ := ex.Evaluate(p.q, p.rewrites)
				if got := renderAnswers(inst.Store, ans); got != p.want {
					errs <- fmt.Errorf("goroutine %d iter %d (%s): answers diverged from serial baseline", g, i, p.q)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := cache.Stats(); s.TokenResolutions == 0 {
		t.Errorf("shared cache built no token resolutions: %+v", s)
	}
}
