package trinit

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEngineLifecycle(t *testing.T) {
	e := New(nil)
	if err := e.AddKGFact("AlbertEinstein", "bornIn", "Ulm"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddKGLiteral("AlbertEinstein", "bornOn", "1879-03-14"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("?x bornIn Ulm"); err == nil {
		t.Fatal("Query before Freeze succeeded")
	}
	e.Freeze()
	if !e.Frozen() {
		t.Fatal("not frozen")
	}
	if err := e.AddKGFact("A", "p", "B"); err == nil {
		t.Fatal("AddKGFact after Freeze succeeded")
	}
	res, err := e.Query("?x bornIn Ulm")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Bindings["x"] != "AlbertEinstein" {
		t.Fatalf("answers = %+v", res.Answers)
	}
}

func TestEngineQueryParseError(t *testing.T) {
	e := New(nil)
	e.Freeze()
	if _, err := e.Query("not a 'query"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestDemoEngineUsersAToD(t *testing.T) {
	e := NewDemoEngine()
	for _, dq := range DemoQueries() {
		res, err := e.Query(dq.Query)
		if err != nil {
			t.Fatalf("user %s: %v", dq.User, err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("user %s: no answers", dq.User)
		}
		var got string
		for _, v := range res.Answers[0].Bindings {
			got = v
		}
		if got != dq.Want {
			t.Errorf("user %s: answer = %q, want %q", dq.User, got, dq.Want)
		}
	}
}

func TestDemoEngineExplanations(t *testing.T) {
	e := NewDemoEngine()
	res, err := e.Query("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	ex := res.Answers[0].Explanation
	if len(ex.Rules) == 0 {
		t.Fatal("explanation lists no rules despite relaxation")
	}
	if len(ex.KGTriples) == 0 || len(ex.XKGTriples) == 0 {
		t.Fatalf("explanation triples: KG=%d XKG=%d", len(ex.KGTriples), len(ex.XKGTriples))
	}
	if ex.XKGTriples[0].Source != "XKG" || ex.XKGTriples[0].Doc == "" {
		t.Fatalf("XKG evidence = %+v", ex.XKGTriples[0])
	}
	if !strings.Contains(ex.Text, "PrincetonUniversity") {
		t.Errorf("explanation text = %q", ex.Text)
	}
	if len(res.Notices) == 0 {
		t.Error("no rule notices for a relaxed query")
	}
}

func TestEngineAddRuleValidation(t *testing.T) {
	e := New(nil)
	if err := e.AddRule("bad", "no arrow", 1.0); err == nil {
		t.Fatal("invalid rule accepted")
	}
	if err := e.AddRule("ok", "?x p ?y => ?x q ?y", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := e.Rules(); len(got) != 1 || got[0].ID != "ok" {
		t.Fatalf("Rules = %v", got)
	}
	e.ClearRules()
	if len(e.Rules()) != 0 {
		t.Fatal("ClearRules failed")
	}
}

func TestEngineExtendAndMine(t *testing.T) {
	e := New(nil)
	for _, f := range [][3]string{
		{"AldenAckermann", "affiliation", "NorthfordUniversity"},
		{"BertaBrenner", "affiliation", "SouthburgUniversity"},
		{"ClovisClaussen", "affiliation", "NorthfordUniversity"},
	} {
		if err := e.AddKGFact(f[0], f[1], f[2]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := e.ExtendFromDocuments([]Document{
		{ID: "d1", Text: "Alden Ackermann worked at Northford University. Berta Brenner worked at Southburg University."},
		{ID: "d2", Text: "Dorian Dittmar worked at Northford University."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TriplesAdded == 0 || stats.LinkedSubjects == 0 {
		t.Fatalf("extend stats = %+v", stats)
	}
	e.Freeze()
	if _, err := e.MineRules(MiningConfig{MinSupport: 2, MinWeight: 0.1}); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range e.Rules() {
		if strings.Contains(r.ID, "affiliation") && strings.Contains(r.ID, "worked at") {
			found = true
		}
	}
	if !found {
		t.Fatalf("alignment rule not mined: %v", e.Rules())
	}
	// The mined rule lets an affiliation query reach the corpus-only
	// fact about Dorian Dittmar.
	res, err := e.Query("?x affiliation NorthfordUniversity")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, a := range res.Answers {
		names = append(names, a.Bindings["x"])
	}
	joined := strings.Join(names, ",")
	// Alden is a KG affiliate; Dorian exists only in the corpus and has
	// no KG entry to link to, so he surfaces as a token phrase.
	if !strings.Contains(joined, "AldenAckermann") || !strings.Contains(joined, "Dorian Dittmar") {
		t.Fatalf("answers = %v, want KG and corpus-only affiliates", names)
	}
}

func TestEngineMineRequiresFrozen(t *testing.T) {
	e := New(nil)
	if _, err := e.MineRules(DefaultMiningConfig()); err == nil {
		t.Fatal("MineRules before Freeze succeeded")
	}
}

func TestEngineOperators(t *testing.T) {
	e := New(nil)
	e.AddOperator(func(*Engine) []RuleSpec {
		return []RuleSpec{{ID: "op1", Rule: "?x p ?y => ?x q ?y", Weight: 0.4}}
	})
	if err := e.RunOperators(); err != nil {
		t.Fatal(err)
	}
	rules := e.Rules()
	if len(rules) != 1 || rules[0].Origin != "operator" {
		t.Fatalf("rules = %v", rules)
	}
	e.AddOperator(func(*Engine) []RuleSpec {
		return []RuleSpec{{ID: "bad", Rule: "broken", Weight: 0.4}}
	})
	if err := e.RunOperators(); err == nil {
		t.Fatal("operator with invalid rule accepted")
	}
}

func TestEngineAddTokenTriple(t *testing.T) {
	e := New(nil)
	if err := e.AddKGFact("AlbertEinstein", "bornIn", "Ulm"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTokenTriple("AlbertEinstein", "won Nobel for", "discovery of the photoelectric effect", 0.9, "doc1", "Einstein won a Nobel..."); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTokenTriple("A", "p", "B", 1.5, "", ""); err == nil {
		t.Fatal("bad confidence accepted")
	}
	e.Freeze()
	res, err := e.Query("AlbertEinstein 'won nobel for' ?x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %v", res.Answers)
	}
	// Known-entity subject was linked to the resource.
	if res.Answers[0].Explanation.XKGTriples[0].Doc != "doc1" {
		t.Fatalf("provenance = %+v", res.Answers[0].Explanation.XKGTriples[0])
	}
}

func TestEngineComplete(t *testing.T) {
	e := NewDemoEngine()
	got := e.Complete("Albert", 5)
	if len(got) == 0 || got[0].Text != "AlbertEinstein" {
		t.Fatalf("completions = %v", got)
	}
	if New(nil).Complete("x", 5) != nil {
		t.Fatal("Complete on unfrozen engine returned data")
	}
}

func TestEngineStats(t *testing.T) {
	e := NewDemoEngine()
	s := e.Stats()
	if s.KGTriples != 8 || s.XKGTriples != 4 || s.Rules != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEngineSuggestions(t *testing.T) {
	e := New(nil)
	for _, f := range [][3]string{
		{"Alice", "worksFor", "Acme"},
		{"Bob", "worksFor", "Globex"},
	} {
		if err := e.AddKGFact(f[0], f[1], f[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddTokenTriple("Alice", "works at", "Acme", 0.8, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTokenTriple("Bob", "works at", "Globex", 0.8, "", ""); err != nil {
		t.Fatal(err)
	}
	e.Freeze()
	res, err := e.Query("?x 'works at' ?y")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) == 0 || res.Suggestions[0].Resource != "worksFor" {
		t.Fatalf("suggestions = %+v", res.Suggestions)
	}
}

func TestEngineMetricsExposed(t *testing.T) {
	e := NewDemoEngine()
	res, err := e.Query("?x bornIn Germany . Germany type country")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RewritesTotal == 0 || res.Metrics.SortedAccesses == 0 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
}

func TestSyntheticEngineEndToEnd(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.People = 40
	e, queries, err := NewSyntheticEngine(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 {
		t.Fatal("no workload queries")
	}
	if e.Stats().XKGTriples == 0 {
		t.Fatal("no XKG triples in synthetic engine")
	}
	answered := 0
	for _, q := range queries {
		res, err := e.Query(q.Text + " LIMIT 5")
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		for _, a := range res.Answers {
			if q.Judgments[a.Bindings[q.Var]] > 0 {
				answered++
				break
			}
		}
	}
	if answered == 0 {
		t.Fatal("no workload query returned a relevant answer")
	}
}

func TestExhaustiveOptionMatchesIncremental(t *testing.T) {
	inc := NewDemoEngine()
	exhOpts := (*Options)(nil).withDefaults()
	exhOpts.Exhaustive = true
	exh := &Engine{opts: exhOpts, st: inc.st, rules: inc.rules, frozen: true}

	for _, dq := range DemoQueries() {
		a, err := inc.Query(dq.Query)
		if err != nil {
			t.Fatal(err)
		}
		b, err := exh.Query(dq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Answers) != len(b.Answers) {
			t.Fatalf("user %s: %d vs %d answers", dq.User, len(a.Answers), len(b.Answers))
		}
		for i := range a.Answers {
			if a.Answers[i].Score != b.Answers[i].Score {
				t.Fatalf("user %s answer %d: score %v vs %v", dq.User, i, a.Answers[i].Score, b.Answers[i].Score)
			}
		}
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	e := NewDemoEngine()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				switch j % 4 {
				case 0:
					if _, err := e.Query("AlbertEinstein hasAdvisor ?x"); err != nil {
						errs <- err
					}
				case 1:
					e.Complete("Al", 5)
				case 2:
					e.Stats()
				default:
					id := fmt.Sprintf("cc-%d-%d", i, j)
					if err := e.AddRule(id, "?x p"+id+" ?y => ?x q ?y", 0.5); err != nil {
						errs <- err
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	src := NewDemoEngine()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Frozen() {
		t.Fatal("loaded engine unexpectedly frozen")
	}
	restored.Freeze()
	a := src.Stats()
	b := restored.Stats()
	if a.Triples != b.Triples || a.KGTriples != b.KGTriples || a.Rules != b.Rules {
		t.Fatalf("stats differ: %+v vs %+v", a, b)
	}
	// The restored engine must answer the demo queries identically.
	for _, dq := range DemoQueries() {
		r1, err := src.Query(dq.Query)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := restored.Query(dq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Answers) != len(r2.Answers) {
			t.Fatalf("user %s: answer counts differ", dq.User)
		}
		for i := range r1.Answers {
			if r1.Answers[i].Score != r2.Answers[i].Score {
				t.Fatalf("user %s: scores differ at %d", dq.User, i)
			}
		}
	}
}

func TestEngineSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.tnt")
	if err := NewDemoEngine().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := LoadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Freeze()
	if e.Stats().Triples != 12 {
		t.Fatalf("triples = %d", e.Stats().Triples)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.tnt"), nil); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}

func TestEngineAsk(t *testing.T) {
	e := NewDemoEngine()
	res, translated, err := e.Ask("What did Einstein win a Nobel prize for?")
	if err != nil {
		t.Fatal(err)
	}
	if translated != "AlbertEinstein 'won prize for' ?a" {
		t.Fatalf("translated = %q", translated)
	}
	if len(res.Answers) == 0 || res.Answers[0].Bindings["a"] != "discovery of the photoelectric effect" {
		t.Fatalf("answers = %+v", res.Answers)
	}
	if _, _, err := e.Ask("untranslatable gibberish"); err == nil {
		t.Fatal("untranslatable question accepted")
	}
	if _, _, err := New(nil).Ask("Who was born in Ulm?"); err == nil {
		t.Fatal("Ask on unfrozen engine succeeded")
	}
}

func TestMineRulesExtendedSources(t *testing.T) {
	e := New(nil)
	// A KG whose livesIn facts follow bornIn ∘ locatedIn, with token
	// phrases for the paraphrase and relatedness operators.
	kg := [][3]string{
		{"A", "bornIn", "Ulm"}, {"B", "bornIn", "Ulm"},
		{"Ulm", "locatedIn", "Germany"},
		{"A", "livesIn", "Germany"}, {"B", "livesIn", "Germany"},
	}
	for _, f := range kg {
		if err := e.AddKGFact(f[0], f[1], f[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddTokenTriple("A", "worked at", "X", 0.8, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTokenTriple("B", "was employed by", "Y", 0.8, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTokenTriple("C", "was born in", "Ulm", 0.8, "", ""); err != nil {
		t.Fatal(err)
	}
	e.Freeze()
	specs, err := e.MineRules(MiningConfig{
		MinSupport:  1,
		MinWeight:   0.05,
		HornRules:   true,
		Paraphrases: true,
		Relatedness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	origins := make(map[string]int)
	for _, s := range specs {
		origins[s.Origin]++
	}
	for _, want := range []string{"horn", "paraphrase", "relatedness"} {
		if origins[want] == 0 {
			t.Errorf("no %s rules mined (origins: %v)", want, origins)
		}
	}
}

func TestQueryTrace(t *testing.T) {
	e := NewDemoEngine()
	res, err := e.Query("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace entries")
	}
	// The first entry is the original query with weight 1 and no rules.
	first := res.Trace[0]
	if first.Weight != 1 || len(first.Rules) != 0 {
		t.Fatalf("first trace entry = %+v", first)
	}
	statuses := make(map[string]int)
	evaluatedWithAnswers := 0
	for _, tr := range res.Trace {
		statuses[tr.Status]++
		if tr.Status == "evaluated" && tr.Answers > 0 {
			evaluatedWithAnswers++
			if len(tr.PatternMatches) != 3 && len(tr.PatternMatches) != 2 {
				t.Errorf("pattern match sizes = %v", tr.PatternMatches)
			}
		}
		if tr.Status == "" {
			t.Errorf("trace entry without status: %+v", tr)
		}
	}
	if evaluatedWithAnswers == 0 {
		t.Fatalf("no evaluated rewrite produced answers; statuses: %v", statuses)
	}
	// The original query joins to nothing (user C's KG gap): its trace
	// entry must show zero answers despite non-empty pattern lists.
	if first.Answers != 0 {
		t.Errorf("original query produced %d answers, want 0", first.Answers)
	}
}

func TestEngineOptionsMaxRewrites(t *testing.T) {
	opts := &Options{MaxRewrites: 2}
	base := NewDemoEngine()
	e := &Engine{opts: opts.withDefaults(), st: nil}
	_ = e
	// Rebuild a demo-like engine with constrained options.
	limited := New(opts)
	if err := limited.AddKGFact("AlfredKleiner", "hasStudent", "AlbertEinstein"); err != nil {
		t.Fatal(err)
	}
	limited.Freeze()
	for _, r := range base.Rules() {
		if err := limited.AddRule(r.ID, ruleBody(r.Rule), r.Weight); err != nil {
			t.Fatalf("rule %s: %v", r.ID, err)
		}
	}
	res, err := limited.Query("AlbertEinstein hasAdvisor ?x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RewritesTotal > 2 {
		t.Fatalf("MaxRewrites ignored: %d rewrites", res.Metrics.RewritesTotal)
	}
}

// ruleBody strips the " [w=..., origin]" suffix RuleSpec.Rule carries.
func ruleBody(s string) string {
	if i := strings.LastIndex(s, " ["); i > 0 {
		return s[:i]
	}
	return s
}

func TestEngineMinTokenSimilarity(t *testing.T) {
	strict := New(&Options{MinTokenSimilarity: 0.99})
	if err := strict.AddTokenTriple("A", "won a great prize", "B", 0.9, "", ""); err != nil {
		t.Fatal(err)
	}
	strict.Freeze()
	res, err := strict.Query("?x 'won prize' ?y")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("strict similarity still matched: %+v", res.Answers)
	}
	loose := New(&Options{MinTokenSimilarity: 0.3})
	if err := loose.AddTokenTriple("A", "won a great prize", "B", 0.9, "", ""); err != nil {
		t.Fatal(err)
	}
	loose.Freeze()
	res, err = loose.Query("?x 'won prize' ?y")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("loose similarity missed: %+v", res.Answers)
	}
}

func TestEngineRemoveRule(t *testing.T) {
	e := NewDemoEngine()
	if !e.RemoveRule("fig4-2") {
		t.Fatal("existing rule not removed")
	}
	if e.RemoveRule("fig4-2") {
		t.Fatal("removed rule removed twice")
	}
	if len(e.Rules()) != 3 {
		t.Fatalf("rules = %d", len(e.Rules()))
	}
	// Without the inversion rule, user B's query fails again.
	res, err := e.Query("AlbertEinstein hasAdvisor ?x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers after rule removal = %v", res.Answers)
	}
}
