// QA: natural-language question answering over the extended knowledge
// graph. The paper plans TriniT as the back-end "for the queries into
// which user questions are mapped" (§6); this example asks the Figure 2
// information needs as plain questions, shows the structured query each
// was translated into, and prints the ranked, explained answers.
package main

import (
	"fmt"
	"log"

	"trinit"
)

func main() {
	e := trinit.NewDemoEngine()

	questions := []string{
		"Who was born in Ulm?",
		"Who was the advisor of Albert Einstein?",
		"Who is affiliated with Princeton University?",
		"What did Einstein win a Nobel prize for?",
		"Where was Einstein born?",
		"Where is Ulm located?",
	}
	for _, q := range questions {
		fmt.Printf("Q: %s\n", q)
		res, translated, err := e.Ask(q)
		if err != nil {
			fmt.Printf("   (cannot translate: %v)\n\n", err)
			continue
		}
		fmt.Printf("   query: %s\n", translated)
		if len(res.Answers) == 0 {
			fmt.Println("   no answers")
		}
		for i, a := range res.Answers {
			fmt.Printf("   %d. %s  (score %.3f)\n", i+1, a.Bindings["a"], a.Score)
			if i == 0 && len(a.Explanation.Rules) > 0 {
				fmt.Printf("      via relaxation %s\n", a.Explanation.Rules[0].ID)
			}
		}
		fmt.Println()
	}

	// A question that needs a quoted-token fallback: the entity is not
	// in the KG, so the translator emits a textual token and TriniT's
	// approximate matching takes over.
	q := "Who was born in Ruritania?"
	_, translated, err := e.Ask(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q: %s\n   query: %s (unknown entity stays a token)\n", q, translated)
}
