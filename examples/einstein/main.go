// Einstein: the paper's running example end to end — the four users of
// Figure 2 fail on the raw KG and succeed after relaxation over the
// extended knowledge graph, each with a full answer explanation (§5).
package main

import (
	"fmt"
	"log"

	"trinit"
)

func main() {
	e := trinit.NewDemoEngine()
	s := e.Stats()
	fmt.Printf("demo XKG: %d KG triples (Figure 1) + %d token triples (Figure 3), %d rules (Figure 4)\n\n",
		s.KGTriples, s.XKGTriples, s.Rules)

	for _, dq := range trinit.DemoQueries() {
		fmt.Printf("== user %s: %s\n", dq.User, dq.Need)
		fmt.Printf("   query: %s\n", dq.Query)
		res, err := e.Query(dq.Query)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Answers) == 0 {
			fmt.Println("   no answers")
			continue
		}
		top := res.Answers[0]
		fmt.Printf("   top answer: %v (score %.3f)\n", top.Bindings, top.Score)
		if dq.EmptyWithoutRelaxation {
			fmt.Println("   (the raw KG query returns nothing — relaxation found this)")
		}
		fmt.Println("   explanation:")
		fmt.Print(indent(top.Explanation.Text, "     "))
		fmt.Println()
	}
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += prefix + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
