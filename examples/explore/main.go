// Explore: the exploratory-session features of the §5 demo — auto-
// completion while typing, token → resource query suggestions, structural
// relaxation notices, user-defined relaxation rules, and streaming
// top-k answers as the incremental processor admits them.
package main

import (
	"context"
	"fmt"
	"log"

	"trinit"
)

func main() {
	cfg := trinit.DefaultSyntheticConfig()
	cfg.People = 150
	engine, _, err := trinit.NewSyntheticEngine(cfg, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Auto-completion guides the user towards meaningful
	// formulations (§5: "User input is eased by auto-completion").
	fmt.Println("== auto-completion for the prefix 'North'")
	for _, c := range engine.Complete("North", 5) {
		fmt.Printf("   %-30s (weight %.0f)\n", c.Text, c.Weight)
	}

	// 2. A user types a textual token where a canonical predicate
	// exists. TriniT answers AND suggests the canonical formulation.
	ctx := context.Background()
	q := "?x 'worked at' ?y LIMIT 3"
	fmt.Printf("\n== token query: %s\n", q)
	res, err := engine.QueryContext(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res.Answers {
		fmt.Printf("   %d. ?x=%s ?y=%s (score %.3f)\n", i+1, a.Bindings["x"], a.Bindings["y"], a.Score)
	}
	for _, s := range res.Suggestions {
		fmt.Printf("   suggestion: replace '%s' (%s) with the KG predicate %s (match overlap %.2f)\n",
			s.Token, s.Position, s.Resource, s.Overlap)
	}

	// 3. Structural relaxation notices teach the user the KG's shape
	// (§5: "the user gradually gains a better understanding of the KG").
	people := engine.Complete("Alden", 1)
	if len(people) > 0 {
		q = people[0].Text + " hasAdvisor ?x"
		fmt.Printf("\n== mismatched-direction query: %s\n", q)
		res, err = engine.QueryContext(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Answers) == 0 {
			fmt.Println("   no answers (this person has no recorded advisor)")
		}
		for i, a := range res.Answers {
			fmt.Printf("   %d. ?x=%s (score %.3f)\n", i+1, a.Bindings["x"], a.Score)
		}
		for _, n := range res.Notices {
			fmt.Printf("   notice: %s\n", n.Message)
		}
	}

	// 4. User-defined relaxation rules (§5: "Users can define their own
	// relaxation rules"): bridge a made-up predicate to corpus phrasing.
	fmt.Println("\n== user-defined rule: visitedCity => 'visited'")
	if err := engine.AddRule("user-visited", "?x visitedCity ?y => ?x 'visited' ?y", 0.6); err != nil {
		log.Fatal(err)
	}
	res, err = engine.QueryContext(ctx, "?x visitedCity ?y LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Answers) == 0 {
		fmt.Println("   no answers (corpus had no visit sentences)")
	}
	for i, a := range res.Answers {
		fmt.Printf("   %d. ?x=%s ?y=%s (score %.3f)\n", i+1, a.Bindings["x"], a.Bindings["y"], a.Score)
	}

	// 5. Streaming: provisional answers surface the moment the
	// incremental processor admits them into its running top-k — the
	// interactive feel of the demo, without waiting for the final
	// ranking (the HTTP server exposes the same stream as Server-Sent
	// Events on /api/query/stream).
	q = "?x 'worked at' ?y LIMIT 3"
	fmt.Printf("\n== streaming query: %s\n", q)
	_, err = engine.QueryStream(ctx, q, func(ev trinit.AnswerEvent) error {
		switch ev.Type {
		case trinit.EventProvisional:
			fmt.Printf("   ~ provisional: ?x=%s ?y=%s (score %.3f)\n",
				ev.Answer.Bindings["x"], ev.Answer.Bindings["y"], ev.Answer.Score)
		case trinit.EventAnswer:
			fmt.Printf("   %d. ?x=%s ?y=%s (score %.3f)\n",
				ev.Rank, ev.Answer.Bindings["x"], ev.Answer.Bindings["y"], ev.Answer.Score)
		case trinit.EventDone:
			fmt.Printf("   done (%d join branches)\n", ev.Metrics.JoinBranches)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTip: run cmd/trinitd for the browser version of this session.")
}
