// Journalist: the §5 use case — join-intensive entity-relationship queries
// over a large extended knowledge graph, "the advanced information needs
// of journalists, market analysts, and other knowledge workers". The
// answers combine triples from the curated KG and from Open-IE extractions
// across multiple source documents, something no single web page contains.
package main

import (
	"fmt"
	"log"

	"trinit"
)

func main() {
	cfg := trinit.DefaultSyntheticConfig()
	cfg.People = 200
	engine, workload, err := trinit.NewSyntheticEngine(cfg, 70)
	if err != nil {
		log.Fatal(err)
	}
	s := engine.Stats()
	fmt.Printf("synthetic XKG: %d triples (%d KG + %d Open-IE), %d relaxation rules\n\n",
		s.Triples, s.KGTriples, s.XKGTriples, s.Rules)

	// A research dossier: every join-intensive query of the workload,
	// i.e. queries whose answers require combining multiple triples.
	shown := 0
	for _, wq := range workload {
		if wq.Category != "cityjoin" && wq.Category != "leaguejoin" {
			continue
		}
		if shown >= 3 {
			break
		}
		shown++
		fmt.Printf("== %s (%s)\n   %s\n", wq.ID, wq.Category, wq.Text)
		res, err := engine.Query(wq.Text + " LIMIT 5")
		if err != nil {
			log.Fatal(err)
		}
		for i, a := range res.Answers {
			marker := " "
			if wq.Judgments[a.Bindings[wq.Var]] > 0 {
				marker = "*" // confirmed by the ground truth
			}
			fmt.Printf("  %s%d. %-30s score %.3f", marker, i+1, a.Bindings[wq.Var], a.Score)
			if len(a.Explanation.XKGTriples) > 0 {
				fmt.Printf("  [uses %d Open-IE triple(s), e.g. %s]",
					len(a.Explanation.XKGTriples), a.Explanation.XKGTriples[0].Doc)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Cross-source investigation: an entity pair query joining a person,
	// their university, and its league — three triples from up to three
	// different sources.
	q := "SELECT ?x ?u WHERE { ?x affiliation ?u . ?u member IvyLeague } LIMIT 5"
	fmt.Printf("== entity-pair query (returns tuples, §5)\n   %s\n", q)
	res, err := engine.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res.Answers {
		fmt.Printf("  %d. ?x=%s  ?u=%s  (score %.3f)\n", i+1, a.Bindings["x"], a.Bindings["u"], a.Score)
	}

	// Dossier narrowing with a date filter: 19th-century scientists at
	// Ivy League institutions.
	q = "SELECT ?x WHERE { ?x affiliation ?u . ?u member IvyLeague . ?x bornOn ?d . FILTER(?d < '1900-01-01') } LIMIT 5"
	fmt.Printf("\n== filtered query (birth date before 1900)\n   %s\n", q)
	res, err = engine.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Answers) == 0 {
		fmt.Println("   no answers")
	}
	for i, a := range res.Answers {
		fmt.Printf("  %d. %s (score %.2g)\n", i+1, a.Bindings["x"], a.Score)
	}
}
