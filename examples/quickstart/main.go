// Quickstart: build a small extended knowledge graph from scratch with the
// public API, extend it with text, mine relaxation rules, and query it
// through the request-scoped API (context, per-query options).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"trinit"
)

func main() {
	e := trinit.New(nil)

	// 1. Load curated KG facts (the Figure 1 style of data).
	kg := [][3]string{
		{"AlbertEinstein", "bornIn", "Ulm"},
		{"Ulm", "locatedIn", "Germany"},
		{"AlfredKleiner", "hasStudent", "AlbertEinstein"},
		{"AlbertEinstein", "affiliation", "IAS"},
		{"PrincetonUniversity", "member", "IvyLeague"},
	}
	for _, f := range kg {
		if err := e.AddKGFact(f[0], f[1], f[2]); err != nil {
			log.Fatal(err)
		}
	}
	if err := e.AddKGLiteral("AlbertEinstein", "bornOn", "1879-03-14"); err != nil {
		log.Fatal(err)
	}

	// 2. Extend with text: Open IE extracts token triples, the entity
	// linker grounds the mentions it can (§2).
	stats, err := e.ExtendFromDocuments([]trinit.Document{
		{ID: "web-1", Text: "Einstein won a Nobel for his discovery of the photoelectric effect."},
		{ID: "web-2", Text: "The IAS was housed in Princeton University. Einstein lectured at Princeton University."},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XKG construction: %d sentences, %d extractions, %d triples added, %d subjects linked\n",
		stats.Sentences, stats.Extractions, stats.TriplesAdded, stats.LinkedSubjects)

	// 3. Freeze and register relaxation rules (§3): one manual
	// inversion rule plus whatever can be mined from the XKG.
	e.Freeze()
	if err := e.AddRule("advisor-inv", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0); err != nil {
		log.Fatal(err)
	}
	if err := e.AddRule("affil-housed", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8); err != nil {
		log.Fatal(err)
	}
	mined, err := e.MineRules(trinit.DefaultMiningConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d manual + %d mined relaxation rules\n\n", 2, len(mined))

	// 4. Query. All three §1 pain points in one session. Queries are
	// request-scoped: the context bounds each one (cancellation and the
	// WithTimeout deadline both produce a partial result plus
	// trinit.ErrCanceled), and per-query options — here a lean
	// high-QPS shape: top-3, no trace, explanations on demand — never
	// touch the engine's configuration.
	ctx := context.Background()
	for _, q := range []string{
		"AlbertEinstein hasAdvisor ?x",                                            // wrong direction: relaxation inverts it
		"AlbertEinstein 'won nobel for' ?x",                                       // no KG predicate: the XKG answers
		"SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }", // incomplete KG: join via XKG
	} {
		res, err := e.QueryContext(ctx, q,
			trinit.WithK(3),
			trinit.WithTimeout(2*time.Second),
			trinit.WithoutTrace(),
			trinit.WithoutExplanations(),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		for i, a := range res.Answers {
			fmt.Printf("  %d. %v  (score %.3f)\n", i+1, a.Bindings, a.Score)
		}
		for _, n := range res.Notices {
			fmt.Printf("  note: %s\n", n.Message)
		}
		fmt.Println()
	}

	// 5. Explanations render lazily: only the answer the user expands
	// pays the rendering cost.
	res, err := e.QueryContext(ctx, "AlbertEinstein hasAdvisor ?x", trinit.WithoutExplanations())
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Answers) > 0 {
		ex, err := res.Explain(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("explanation on demand:\n%s", ex.Text)
	}
}
